"""Failover scenario runner: kill a rail mid-transfer, measure recovery.

:func:`run_failover` is the reusable harness behind the failover
acceptance test, ``benchmarks/bench_failover.py``, and the example
script.  It runs a continuous one-way bulk stream over a two-node
multi-rail cluster with the edge lifecycle control plane enabled, kills
one rail at a configured time (optionally repairing it later), and
reports:

* when the sender's detector declared the rail DOWN (detection latency),
* goodput before the kill, while degraded, and (if repaired) after
  recovery,
* the full edge transition history, and
* end-to-end data integrity of everything the stream delivered.

Everything is deterministic: same parameters + same seed give the same
:class:`FailoverResult`, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..control import (
    DetectorParams,
    EdgeState,
    EdgeTransition,
    FaultSchedule,
    PermanentFailure,
    Repair,
)
from .cluster import make_cluster

__all__ = ["FailoverResult", "run_failover"]

_MS = 1_000_000


@dataclass
class FailoverResult:
    """Everything measured by one :func:`run_failover` run."""

    config: str
    chunk_bytes: int
    chunks_sent: int
    data_intact: bool
    kill_ns: int
    repair_ns: Optional[int]
    detected_ns: Optional[int]  # sender-side DOWN transition time
    recovered_ns: Optional[int]  # sender-side post-repair UP transition
    baseline_goodput_bps: float  # before the kill
    degraded_goodput_bps: float  # between detection and repair
    recovered_goodput_bps: float  # after recovery (0.0 if no repair)
    probe_frames: int = 0  # heartbeat probes sent (both endpoints)
    wire_frames: int = 0  # every frame any NIC transmitted
    transitions: list[EdgeTransition] = field(default_factory=list)

    @property
    def detect_latency_ns(self) -> Optional[int]:
        if self.detected_ns is None:
            return None
        return self.detected_ns - self.kill_ns

    @property
    def probe_overhead(self) -> float:
        """Heartbeat frames as a fraction of everything on the wire."""
        return self.probe_frames / self.wire_frames if self.wire_frames else 0.0

    @property
    def degraded_fraction(self) -> float:
        """Degraded goodput as a fraction of the pre-kill baseline."""
        if self.baseline_goodput_bps <= 0:
            return 0.0
        return self.degraded_goodput_bps / self.baseline_goodput_bps


def run_failover(
    config: str = "2Lu-1G",
    chunk_bytes: int = 256 * 1024,
    kill_ns: int = 10 * _MS,
    repair_ns: Optional[int] = 60 * _MS,
    run_ns: int = 100 * _MS,
    dead_rail: int = 0,
    seed: int = 0,
    detector_params: Optional[DetectorParams] = None,
    striping: Optional[str] = None,
) -> FailoverResult:
    """Stream chunks from node 0 to node 1, killing ``dead_rail`` en route.

    The stream issues back-to-back ``chunk_bytes`` RDMA writes for
    ``run_ns`` of simulated time.  ``striping`` overrides the cluster
    config's policy (e.g. ``"adaptive"``).  ``repair_ns=None`` leaves the
    rail dead for good.
    """
    cluster = make_cluster(config, nodes=2, seed=seed)
    if striping is not None:
        # Connections are established lazily, so swapping the protocol
        # params before the first connect() retargets the striping policy.
        cluster.config.protocol = replace(
            cluster.config.protocol, striping=striping
        )
    a, b = cluster.connect(0, 1)
    mgr_a, _mgr_b = cluster.enable_edge_control(
        0, 1, detector_params=detector_params
    )

    events: list = [PermanentFailure(at_ns=kill_ns, node=0, rail=dead_rail)]
    if repair_ns is not None:
        events.append(Repair(at_ns=repair_ns, node=0, rail=dead_rail))
    FaultSchedule(events).apply(cluster)

    src = a.node.memory.alloc(chunk_bytes)
    dst = b.node.memory.alloc(chunk_bytes)
    payload = bytes(i % 251 for i in range(chunk_bytes))
    a.node.memory.write(src, payload)

    progress: list[tuple[int, int]] = []  # (completion time, chunk index)
    state = {"sent": 0, "intact": True}

    def stream():
        while cluster.sim.now < run_ns:
            handle = yield from a.rdma_write(src, dst, chunk_bytes)
            yield from handle.wait()
            if b.node.memory.read(dst, chunk_bytes) != payload:
                state["intact"] = False
            state["sent"] += 1
            progress.append((cluster.sim.now, state["sent"]))

    proc = cluster.sim.process(stream())
    cluster.sim.run_until_done(proc, limit=run_ns + 200 * _MS)

    detected_ns = None
    recovered_ns = None
    for t in mgr_a.history:
        if t.rail == dead_rail and t.new is EdgeState.DOWN and detected_ns is None:
            detected_ns = t.time_ns
        if (
            detected_ns is not None
            and t.rail == dead_rail
            and t.new is EdgeState.UP
            and t.time_ns > detected_ns
        ):
            recovered_ns = t.time_ns
            break

    def goodput(t0: int, t1: int) -> float:
        """Chunk-completion goodput (bits/s) over [t0, t1)."""
        if t1 <= t0:
            return 0.0
        done = sum(1 for when, _ in progress if t0 <= when < t1)
        return done * chunk_bytes * 8 / ((t1 - t0) / 1e9)

    stream_end = progress[-1][0] if progress else 0
    baseline = goodput(0, min(kill_ns, stream_end))
    degraded_end = repair_ns if repair_ns is not None else run_ns
    degraded_start = detected_ns if detected_ns is not None else kill_ns
    degraded = goodput(degraded_start, degraded_end)
    recovered = 0.0
    if recovered_ns is not None:
        recovered = goodput(recovered_ns, run_ns)

    mgr_a.stop()
    _mgr_b.stop()
    probe_frames = a.stats.probes_sent + b.stats.probes_sent
    wire_frames = sum(
        nic.counters.tx_frames for node in cluster.nodes for nic in node.nics
    )
    return FailoverResult(
        config=config,
        chunk_bytes=chunk_bytes,
        chunks_sent=state["sent"],
        data_intact=state["intact"],
        kill_ns=kill_ns,
        repair_ns=repair_ns,
        detected_ns=detected_ns,
        recovered_ns=recovered_ns,
        baseline_goodput_bps=baseline,
        degraded_goodput_bps=degraded,
        recovered_goodput_bps=recovered,
        probe_frames=probe_frames,
        wire_frames=wire_frames,
        transitions=list(mgr_a.history),
    )
