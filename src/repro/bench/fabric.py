"""Fabric benchmark runners: oversubscribed incast and ECMP evenness.

Two reusable harnesses behind ``benchmarks/bench_fabric.py``:

* :func:`run_fabric_incast` — the PR 4 incast experiment pushed across a
  3:1-oversubscribed leaf-spine fabric: senders spread over several
  leaves converge on one receiver two switch hops away, so congestion
  now forms at trunk ports as well as the receiver's access port.  The
  congestion-controller comparison (static vs AIMD vs DCTCP) must
  reproduce across the extra hops.
* :func:`run_ecmp_evenness` — a permutation traffic matrix over the
  same fabric, reporting the max/min byte ratio across leaf-to-spine
  uplinks: the load-balance quality of the deterministic flow hash.
"""

from __future__ import annotations

from typing import Optional

from ..congestion import CongestionParams
from ..fabric import LeafSpineSpec, Permutation, TrafficResult, run_traffic
from .cluster import make_cluster
from .incast import IncastResult, run_incast

__all__ = ["leaf_spine_3to1", "run_fabric_incast", "run_ecmp_evenness"]


def leaf_spine_3to1(leaves: int = 3, spines: int = 2) -> LeafSpineSpec:
    """The benchmark's leaf-spine: 6 hosts/leaf over 2 spine uplinks at
    1 GbE = 3:1 oversubscribed for cross-leaf traffic."""
    return LeafSpineSpec(leaves=leaves, spines=spines, hosts_per_leaf=6)


def run_fabric_incast(
    senders: int = 16,
    chunk_bytes: int = 64 * 1024,
    chunks_per_sender: int = 8,
    congestion: str = "static",
    congestion_params: Optional[CongestionParams] = None,
    ecn_threshold_frames: Optional[int] = None,
    seed: int = 0,
    spec: Optional[LeafSpineSpec] = None,
) -> IncastResult:
    """16:1 incast across an oversubscribed leaf-spine fabric.

    With the default spec (18-host capacity), the 16 senders fill leaves
    0-2 and the receiver (node 16) sits on the last leaf — most senders'
    frames cross two trunk hops before they converge.
    """
    # ECMP hashes over the connection id, allocated per-simulator (a
    # fresh cluster always starts at 1), so the same parameters pick the
    # same paths no matter how many runs came before in this process.
    spec = spec or leaf_spine_3to1()
    return run_incast(
        config="1L-1G",
        senders=senders,
        chunk_bytes=chunk_bytes,
        chunks_per_sender=chunks_per_sender,
        congestion=congestion,
        congestion_params=congestion_params,
        ecn_threshold_frames=ecn_threshold_frames,
        seed=seed,
        fabric=spec,
    )


def run_ecmp_evenness(
    nodes: int = 18,
    bytes_per_flow: int = 16_000,
    rounds: int = 16,
    seed: int = 0,
    spec: Optional[LeafSpineSpec] = None,
) -> TrafficResult:
    """Permutation matrix over the leaf-spine; the result's
    ``ecmp_evenness`` is the max/min spine byte ratio (1.0 = perfect)."""
    spec = spec or leaf_spine_3to1()
    cluster = make_cluster(
        "1L-1G", nodes=nodes, seed=seed, synthetic_payloads=False, fabric=spec
    )
    result = run_traffic(
        cluster, Permutation(bytes_per_flow, rounds=rounds), seed=seed
    )
    violations = [
        v for fab in cluster.fabrics for v in fab.routing_invariants()
    ]
    if violations:
        raise AssertionError(
            "fabric routing invariants violated: " + "; ".join(violations)
        )
    return result
