"""Experiment runners shared by the benchmark files.

Each function runs a complete experiment (sweep or application set) and
returns structured results.  Results are cached per-process keyed on the
experiment parameters, so the three Figure-2 benchmarks (latency,
throughput, CPU) share one sweep, and pytest-benchmark's timing hooks can
re-enter without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

from typing import TYPE_CHECKING

from .cluster import make_cluster
from .micro import MicroResult, run_micro

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..apps import AppResult

__all__ = [
    "DEFAULT_SIZES",
    "micro_sweep",
    "app_run",
    "app_speedup_curve",
    "MICRO_BENCHMARKS",
]

MICRO_BENCHMARKS = ("ping-pong", "one-way", "two-way")

DEFAULT_SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)


@lru_cache(maxsize=None)
def micro_sweep(
    config: str,
    benchmark: str,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    seed: int = 0,
) -> tuple[MicroResult, ...]:
    """One micro-benchmark across transfer sizes on a fresh cluster each."""
    results = []
    for size in sizes:
        cluster = make_cluster(config, nodes=2, seed=seed)
        iterations = 10 if size >= 262144 else None
        results.append(
            run_micro(benchmark, cluster, size, iterations=iterations)
        )
    return tuple(results)


@lru_cache(maxsize=None)
def app_run(
    app_name: str,
    config: str = "1L-1G",
    nodes: int = 16,
    seed: int = 0,
) -> "AppResult":
    """One application run (cached: Figures 3/5/6 share 1-node baselines)."""
    from ..apps import APP_CLASSES, run_app

    app = APP_CLASSES[app_name]()
    return run_app(app, config=config, nodes=nodes, seed=seed)


def app_speedup_curve(
    app_name: str,
    config: str = "1L-1G",
    node_counts: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 0,
) -> dict[int, float]:
    """Speedups versus the 1-node run, per node count."""
    base = app_run(app_name, config, 1, seed)
    return {
        n: app_run(app_name, config, n, seed).speedup_vs(base)
        for n in node_counts
    }
