"""Experiment runners shared by the benchmark files.

Each function runs a complete experiment (sweep or application set) and
returns structured results.  Results are cached per-process keyed on the
experiment parameters, so the three Figure-2 benchmarks (latency,
throughput, CPU) share one sweep, and pytest-benchmark's timing hooks can
re-enter without re-simulating.

The caches are plain dicts keyed per *point* — one ``(config, benchmark,
size, seed)`` micro run or one ``(app, config, nodes, seed)`` application
run — rather than per sweep, so :mod:`repro.bench.parallel` can compute
points in worker processes and prime them here; a later serial
:func:`micro_sweep` call then assembles its tuple entirely from cache.
"""

from __future__ import annotations

from typing import Optional, Sequence

from typing import TYPE_CHECKING

from .cluster import make_cluster
from .micro import MicroResult, run_micro

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..apps import AppResult

__all__ = [
    "DEFAULT_SIZES",
    "micro_sweep",
    "micro_point",
    "app_run",
    "app_speedup_curve",
    "MICRO_BENCHMARKS",
]

MICRO_BENCHMARKS = ("ping-pong", "one-way", "two-way")

DEFAULT_SIZES = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)

# Per-point result caches.  Keys are the full argument tuples of
# micro_point / app_run; repro.bench.parallel primes these directly.
_micro_cache: dict[tuple, MicroResult] = {}
_app_cache: dict[tuple, "AppResult"] = {}


def micro_iterations(size: int) -> Optional[int]:
    """Iteration count for one micro point (None = benchmark default)."""
    return 10 if size >= 262144 else None


def micro_point(
    config: str, benchmark: str, size: int, seed: int = 0
) -> MicroResult:
    """One micro-benchmark at one transfer size, on a fresh cluster."""
    key = (config, benchmark, size, seed)
    hit = _micro_cache.get(key)
    if hit is None:
        # Length-only payloads: identical results, no byte shuffling.
        cluster = make_cluster(
            config, nodes=2, seed=seed, synthetic_payloads=True
        )
        hit = run_micro(
            benchmark, cluster, size, iterations=micro_iterations(size)
        )
        _micro_cache[key] = hit
    return hit


def micro_sweep(
    config: str,
    benchmark: str,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    seed: int = 0,
) -> tuple[MicroResult, ...]:
    """One micro-benchmark across transfer sizes on a fresh cluster each."""
    return tuple(micro_point(config, benchmark, size, seed) for size in sizes)


def app_run(
    app_name: str,
    config: str = "1L-1G",
    nodes: int = 16,
    seed: int = 0,
) -> "AppResult":
    """One application run (cached: Figures 3/5/6 share 1-node baselines)."""
    key = (app_name, config, nodes, seed)
    hit = _app_cache.get(key)
    if hit is None:
        from ..apps import APP_CLASSES, run_app

        app = APP_CLASSES[app_name]()
        hit = run_app(app, config=config, nodes=nodes, seed=seed)
        _app_cache[key] = hit
    return hit


def app_speedup_curve(
    app_name: str,
    config: str = "1L-1G",
    node_counts: Sequence[int] = (1, 2, 4, 8, 16),
    seed: int = 0,
) -> dict[int, float]:
    """Speedups versus the 1-node run, per node count."""
    base = app_run(app_name, config, 1, seed)
    return {
        n: app_run(app_name, config, n, seed).speedup_vs(base)
        for n in node_counts
    }
