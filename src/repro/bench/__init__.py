"""Benchmark harness: cluster builders, micro-benchmarks, runners, reports."""

from .cluster import CONFIG_NAMES, Cluster, ClusterConfig, make_cluster
from .crash import CrashResult, run_crash
from .fabric import leaf_spine_3to1, run_ecmp_evenness, run_fabric_incast
from .failover import FailoverResult, run_failover
from .incast import IncastResult, run_incast
from .micro import MicroResult, run_micro, run_one_way, run_ping_pong, run_two_way
from .report import Table, band_str, check_band, fmt
from .parallel import parallel_app_runs, parallel_micro_sweep, run_points
from .runner import (
    DEFAULT_SIZES,
    MICRO_BENCHMARKS,
    app_run,
    app_speedup_curve,
    micro_point,
    micro_sweep,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "make_cluster",
    "CONFIG_NAMES",
    "CrashResult",
    "run_crash",
    "FailoverResult",
    "run_failover",
    "IncastResult",
    "run_incast",
    "leaf_spine_3to1",
    "run_fabric_incast",
    "run_ecmp_evenness",
    "MicroResult",
    "run_micro",
    "run_ping_pong",
    "run_one_way",
    "run_two_way",
    "micro_sweep",
    "micro_point",
    "parallel_micro_sweep",
    "parallel_app_runs",
    "run_points",
    "app_run",
    "app_speedup_curve",
    "DEFAULT_SIZES",
    "MICRO_BENCHMARKS",
    "Table",
    "fmt",
    "check_band",
    "band_str",
]
