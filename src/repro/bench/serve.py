"""Serving scenario runner: open-loop RPC load over a MultiEdge cluster.

:func:`run_serve` is the reusable harness behind
``benchmarks/bench_serve.py`` and ``examples/serving.py``: it stands up
a cluster, wires an :class:`~repro.mp.MpWorld`, attaches a
:class:`~repro.serve.ServeRuntime`, optionally arms congestion control,
a multi-switch fabric, and a mid-run server crash/restart fault, then
drives the open-loop load to completion and rolls the runtime's
accounting into one comparable :class:`ServeResult`.

:class:`ServeRun` is the phase-split form (``__init__`` / ``state()`` /
``run_to(T)`` / ``finish()``) the checkpoint subsystem needs: pausing a
run mid-spike and finishing must give the identical result to running
straight through (the witness protocol), and ``state()`` is the capture
root for the reflective walker.

Everything is deterministic: same parameters + same seed give the same
:class:`ServeResult`, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..control import Crash, DetectorParams, FaultSchedule, Restart
from ..serve import ArrivalSpec, ServeConfig, ServerSpec, TailSpec, enable_serving
from ..serve.runtime import ServeRuntime
from .cluster import make_cluster

__all__ = ["ServeResult", "ServeRun", "run_serve"]

_MS = 1_000_000


@dataclass
class ServeResult:
    """Everything measured by one serving run."""

    config: str
    policy: str
    arrival_kind: str
    clients: int
    servers: int
    elapsed_ns: int
    # Request conservation (client-side view).
    generated: int
    completed: int
    shed: int
    shed_client: int
    failed: int
    replayed: int
    duplicate_responses: int
    deadline_missed: int
    pending: int
    # Tail latency (merged across per-server histograms), ns.
    p50_ns: int
    p99_ns: int
    p999_ns: int
    mean_ns: float
    max_ns: int
    # Phase decomposition p99s, ns.
    queueing_p99_ns: int
    service_p99_ns: int
    network_p99_ns: int
    # Server-side counters, by rank.
    server_received: dict = field(default_factory=dict)
    server_served: dict = field(default_factory=dict)
    server_shed: dict = field(default_factory=dict)
    server_peak_queue: dict = field(default_factory=dict)
    # SLO + windows (empty without a spec / window_ns).
    slo_attained: Optional[bool] = None
    slo_clauses: dict = field(default_factory=dict)
    windows: list = field(default_factory=list)
    # Fault interplay.
    crashes: int = 0
    reconnects: int = 0
    # Tail tolerance (all zero when the run has no TailSpec).
    hedges_sent: int = 0
    hedges_won: int = 0
    retries_sent: int = 0
    retries_denied: int = 0
    breaker_opens: int = 0
    ejections: int = 0
    # Per-server end-to-end p99, ns (gray-failure attribution).
    p99_by_server: dict = field(default_factory=dict)
    # Invariants + determinism.
    violations: tuple = ()
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def shed_fraction(self) -> float:
        answered = self.completed + self.shed + self.shed_client
        return (self.shed + self.shed_client) / answered if answered else 0.0


class ServeRun:
    """One serving scenario, pausable mid-flight for checkpointing."""

    def __init__(
        self,
        config: str = "1L-1G",
        n_clients: int = 2,
        n_servers: int = 2,
        policy: str = "round-robin",
        arrival: Optional[ArrivalSpec] = None,
        server: Optional[ServerSpec] = None,
        duration_ns: int = 20 * _MS,
        window_ns: int = 0,
        outbox_cap: int = 0,
        slo=None,
        seed: int = 0,
        congestion: str = "static",
        ecn_threshold_frames: Optional[int] = None,
        fabric=None,
        crash_server: Optional[int] = None,
        crash_ns: int = 0,
        restart_delay_ns: int = 0,
        use_monitor: bool = False,
        drain_grace_ns: int = 300 * _MS,
        tail: Optional[TailSpec] = None,
        faults: Optional[Sequence] = None,
        gray_detection: bool = False,
    ) -> None:
        arrival = arrival or ArrivalSpec()
        server = server or ServerSpec()
        faults = tuple(faults or ())
        n_nodes = n_clients + n_servers
        clients = tuple(range(n_clients))
        servers = tuple(range(n_clients, n_nodes))
        self.duration_ns = duration_ns
        self.drain_grace_ns = drain_grace_ns
        # Rebuild recipe for repro.checkpoint.
        self.recipe = {
            "config": config,
            "n_clients": n_clients,
            "n_servers": n_servers,
            "policy": policy,
            "arrival": arrival,
            "server": server,
            "duration_ns": duration_ns,
            "window_ns": window_ns,
            "outbox_cap": outbox_cap,
            "slo": slo,
            "seed": seed,
            "congestion": congestion,
            "ecn_threshold_frames": ecn_threshold_frames,
            "fabric": fabric,
            "crash_server": crash_server,
            "crash_ns": crash_ns,
            "restart_delay_ns": restart_delay_ns,
            "use_monitor": use_monitor,
            "drain_grace_ns": drain_grace_ns,
            "tail": tail,
            "faults": faults,
            "gray_detection": gray_detection,
        }
        # One merged fault timeline: validation then catches conflicts
        # between the convenience crash knob and explicit gray events.
        fault_events = list(faults)
        if crash_server is not None:
            fault_events.append(Crash(at_ns=crash_ns, node=crash_server))
            fault_events.append(
                Restart(
                    at_ns=crash_ns,
                    node=crash_server,
                    delay_ns=restart_delay_ns,
                )
            )
        has_crash = any(isinstance(ev, Crash) for ev in fault_events)
        cluster = self.cluster = make_cluster(
            config,
            nodes=n_nodes,
            seed=seed,
            synthetic_payloads=False,
            **({"fabric": fabric} if fabric is not None else {}),
        )
        cluster.config.protocol = replace(
            cluster.config.protocol, congestion=congestion
        )
        if ecn_threshold_frames is not None:
            cluster.set_ecn_threshold(ecn_threshold_frames)

        self.recovery = None
        if has_crash:
            self.recovery = cluster.enable_crash_recovery()
        if has_crash or gray_detection:
            # The control plane watches every client<->server edge so a
            # server crash escalates to PEER_DOWN and auto-reconnects
            # (and the gray scorer has a population to compare).
            for c in clients:
                for s in servers:
                    cluster.enable_edge_control(
                        c, s, detector_params=DetectorParams()
                    )
        if gray_detection:
            cluster.enable_gray_detection()

        from ..mp import MpWorld

        self.world = MpWorld(cluster)
        self.runtime: ServeRuntime = enable_serving(
            cluster,
            self.world,
            ServeConfig(
                clients=clients,
                servers=servers,
                arrival=arrival,
                server=server,
                policy=policy,
                duration_ns=duration_ns,
                window_ns=window_ns,
                outbox_cap=outbox_cap,
                slo=slo,
                tail=tail,
            ),
        )
        self.monitor = None
        if use_monitor:
            from ..verify.monitor import InvariantMonitor

            self.monitor = InvariantMonitor.attach(cluster, collect=True)
        if fault_events:
            FaultSchedule(fault_events).apply(cluster)
        self.runtime.start()
        self._finished = False

    # -- checkpoint protocol ----------------------------------------------

    def state(self) -> dict:
        """Capture root for the checkpoint walker."""
        return {
            "cluster": self.cluster,
            "world": self.world,
            "runtime": self.runtime,
            "recovery": self.recovery,
            "monitor": self.monitor,
        }

    @property
    def traffic_done(self) -> bool:
        return not self.runtime.active

    def run_to(self, time_ns: int) -> None:
        """Execute every event due at or before ``time_ns``, then pause."""
        self.cluster.sim.run_until_time(time_ns)

    def finish(self) -> ServeResult:
        cluster = self.cluster
        cluster.sim.run_until_time(self.duration_ns)
        # Heartbeat probes recur forever; stop them so the drain converges.
        for mgr in list(cluster.control_planes.values()):
            mgr.stop()
        if cluster.gray_scorer is not None:
            cluster.gray_scorer.stop()
        # The drain must stay bounded: a peer that crashed close enough to
        # the end of the run that the detector never escalated PEER_DOWN
        # leaves survivor-side connections retransmitting into the void
        # forever (request accounting is still complete — crash replay is
        # driven by the recovery manager, not by detection).
        cluster.sim.run(until=self.duration_ns + self.drain_grace_ns)
        self._finished = True
        return self._report()

    def _report(self) -> ServeResult:
        from ..verify.fuzz import fingerprint

        rt = self.runtime
        rt.fail_pending()
        violations = list(rt.check_invariants())
        if self.monitor is not None:
            self.monitor.final_check()
            violations.extend(str(v) for v in self.monitor.violations)
        merged = rt.merged_histogram()
        slo = rt.slo_report(merged)
        cfg = self.recipe
        return ServeResult(
            config=cfg["config"],
            policy=cfg["policy"],
            arrival_kind=cfg["arrival"].kind,
            clients=cfg["n_clients"],
            servers=cfg["n_servers"],
            elapsed_ns=self.cluster.sim.now,
            generated=rt.generated,
            completed=rt.completed,
            shed=rt.shed,
            shed_client=rt.shed_client,
            failed=rt.failed,
            replayed=rt.replayed,
            duplicate_responses=rt.duplicate_responses,
            deadline_missed=rt.deadline_missed,
            pending=rt.pending,
            p50_ns=merged.p50,
            p99_ns=merged.p99,
            p999_ns=merged.p999,
            mean_ns=merged.mean,
            max_ns=merged.max_value or 0,
            queueing_p99_ns=rt.hist_queueing.p99,
            service_p99_ns=rt.hist_service.p99,
            network_p99_ns=rt.hist_network.p99,
            server_received={s: l.received for s, l in rt.servers.items()},
            server_served={s: l.served for s, l in rt.servers.items()},
            server_shed={s: l.shed for s, l in rt.servers.items()},
            server_peak_queue={s: l.peak_queue for s, l in rt.servers.items()},
            slo_attained=None if slo is None else slo.attained,
            slo_clauses={} if slo is None else dict(slo.clauses),
            windows=rt.window_reports(),
            crashes=self.recovery.crashes if self.recovery else 0,
            reconnects=self.recovery.reconnects if self.recovery else 0,
            hedges_sent=rt.tail.hedges_sent if rt.tail else 0,
            hedges_won=rt.tail.hedges_won if rt.tail else 0,
            retries_sent=rt.tail.retries_sent if rt.tail else 0,
            retries_denied=rt.tail.budget.denied if rt.tail else 0,
            breaker_opens=rt.tail.breaker_opens if rt.tail else 0,
            ejections=rt.tail.ejections if rt.tail else 0,
            p99_by_server={s: h.p99 for s, h in rt.hist_by_server.items()},
            violations=tuple(violations),
            fingerprint=fingerprint(self.cluster),
        )


def run_serve(**kwargs) -> ServeResult:
    """One-shot front door: build, run to completion, report."""
    return ServeRun(**kwargs).finish()
