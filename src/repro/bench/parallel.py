"""Process-parallel fan-out of independent experiment points.

Every micro-benchmark point and application run is an isolated experiment:
it builds its own seeded :class:`~repro.sim.core.Simulator`, so results are
a pure function of the argument tuple and determinism across processes is
free.  This module fans those points out over a ``multiprocessing`` pool
and primes the per-process caches in :mod:`repro.bench.runner`, so the
figure benchmarks — which call :func:`~repro.bench.runner.micro_sweep` /
:func:`~repro.bench.runner.app_run` serially — assemble their tables from
cache without re-simulating.

Usage::

    from repro.bench.parallel import parallel_micro_sweep, run_points

    results = parallel_micro_sweep("1L-1G", "one-way")   # == micro_sweep(...)

    # Or fan out an arbitrary mixed work list:
    run_points(
        micro=[("1L-1G", "one-way", 65536, 0), ("2L-1G", "ping-pong", 64, 0)],
        apps=[("fft", "1L-1G", 4, 0)],
    )

Worker processes inherit nothing mutable: each point is recomputed from its
key in a fresh interpreter (``spawn``) or forked snapshot (``fork``), and
the parent merges the returned result objects into the caches.  Parallel
and serial runs are bit-identical (asserted in
``tests/bench/test_parallel_runner.py``).

On single-core machines the pool degrades to one worker; ``processes=0``
skips multiprocessing entirely and computes in-process (still priming the
caches), which is also the fallback when a pool cannot be created.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, Optional, Sequence

from .cluster import make_cluster
from .micro import MicroResult, _collect, _one_way_stream, _reset_measurement
from .runner import DEFAULT_SIZES, _app_cache, _micro_cache, app_run, micro_point

__all__ = [
    "MicroPoint",
    "AppPoint",
    "run_points",
    "parallel_micro_sweep",
    "parallel_app_runs",
    "warm_micro_sweep",
]

# Work-list entries: the argument tuples of runner.micro_point / runner.app_run.
MicroPoint = tuple  # (config, benchmark, size, seed)
AppPoint = tuple  # (app_name, config, nodes, seed)


def _compute_micro(point: MicroPoint) -> MicroResult:
    config, benchmark, size, seed = point
    return micro_point(config, benchmark, size, seed)


def _compute_app(point: AppPoint):
    app_name, config, nodes, seed = point
    return app_run(app_name, config, nodes, seed)


def _compute_batch(batch: tuple) -> tuple:
    """Worker entry point: compute one (kind, point) list, return results."""
    out = []
    for kind, point in batch:
        if kind == "micro":
            out.append(_compute_micro(point))
        else:
            out.append(_compute_app(point))
    return tuple(out)


def default_processes() -> int:
    """Worker count: one per CPU, capped by the work list at call time."""
    return os.cpu_count() or 1


def run_points(
    micro: Sequence[MicroPoint] = (),
    apps: Sequence[AppPoint] = (),
    processes: Optional[int] = None,
) -> None:
    """Compute every point (in parallel when possible) and prime the caches.

    ``micro`` entries are ``(config, benchmark, size, seed)`` tuples;
    ``apps`` entries are ``(app_name, config, nodes, seed)`` tuples.
    Points already cached are skipped.  After this returns, serial
    ``micro_sweep`` / ``app_run`` calls for these points are cache hits.
    """
    micro = [tuple(p) for p in micro]
    apps = [tuple(p) for p in apps]
    work: list[tuple[str, tuple]] = [
        ("micro", p) for p in micro if p not in _micro_cache
    ] + [("app", p) for p in apps if p not in _app_cache]
    if not work:
        return
    if processes is None:
        processes = default_processes()
    processes = min(processes, len(work))

    results: Iterable
    if processes <= 1:
        # In-process: micro_point/app_run fill the caches as they run.
        _compute_batch(tuple(work))
        return
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: fall back to default context
        ctx = multiprocessing.get_context()
    try:
        with ctx.Pool(processes=processes) as pool:
            # One point per task; chunksize 1 keeps the longest points (1 MB
            # sweeps, 16-node apps) from serialising behind short ones.
            batches = [((item,),) for item in work]
            results = pool.starmap(_compute_batch, batches, chunksize=1)
    except (OSError, ValueError):
        # Pool creation failed (resource limits, sandboxes): compute serially.
        _compute_batch(tuple(work))
        return
    for (kind, point), (result,) in zip(work, results):
        if kind == "micro":
            _micro_cache[point] = result
        else:
            _app_cache[point] = result


def parallel_micro_sweep(
    config: str,
    benchmark: str,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    seed: int = 0,
    processes: Optional[int] = None,
) -> tuple[MicroResult, ...]:
    """Parallel drop-in for :func:`repro.bench.runner.micro_sweep`.

    Fans the per-size points over worker processes, then assembles the
    result tuple from the (now primed) cache — bit-identical to the serial
    sweep because every point is its own seeded simulator.
    """
    run_points(
        micro=[(config, benchmark, size, seed) for size in sizes],
        processes=processes,
    )
    return tuple(micro_point(config, benchmark, size, seed) for size in sizes)


# ---------------------------------------------------------------------------
# Warm-started sweeps: simulate the shared prefix once, fork per sweep point
# ---------------------------------------------------------------------------

_WARM_LIMIT_NS = 600_000_000_000


def _warm_iterations(size: int) -> int:
    """Measured iteration count shared by the warm and cold twins."""
    if size >= 262144:
        return 10
    return max(8, min(512, 4_000_000 // size))


def _warm_prefix(config: str, seed: int, warmup: int, warmup_size: int):
    """The sweep-invariant prefix: cluster, connection, fixed-size warmup.

    Everything here is identical for every sweep point — handshakes,
    ring/window priming, pacing state — so it is simulated exactly once
    per warm sweep and inherited by each forked point.
    """
    cluster = make_cluster(config, nodes=2, seed=seed, synthetic_payloads=True)
    a, b = cluster.connect(0, 1)
    src = a.node.memory.alloc(warmup_size)
    dst = b.node.memory.alloc(warmup_size)

    def sender():
        yield from _one_way_stream(a, b, warmup_size, warmup, src, dst)

    def receiver():
        yield from b.wait_notification()

    rproc = cluster.sim.process(receiver())
    cluster.sim.process(sender())
    cluster.sim.run_until_done(rproc, limit=_WARM_LIMIT_NS)
    return cluster, a, b


def _measured_point(cluster, a, b, size: int) -> MicroResult:
    """The per-size measured phase, run on an already-warm cluster."""
    iterations = _warm_iterations(size)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    issue_times: list[int] = []
    state = {"start": 0, "end": 0}

    def sender():
        _reset_measurement(cluster)
        state["start"] = cluster.sim.now
        yield from _one_way_stream(a, b, size, iterations, src, dst, issue_times)

    def receiver():
        yield from b.wait_notification()
        state["end"] = cluster.sim.now

    rproc = cluster.sim.process(receiver())
    cluster.sim.process(sender())
    cluster.sim.run_until_done(rproc, limit=_WARM_LIMIT_NS)
    elapsed = state["end"] - state["start"]
    host_overhead_us = (sum(issue_times) / len(issue_times)) / 1000.0
    return _collect(
        cluster, "one-way", size, iterations, elapsed,
        latency_us=host_overhead_us,
        total_payload_bytes=size * iterations,
        directions=1,
    )


def warm_micro_sweep(
    config: str,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    seed: int = 0,
    warmup: int = 4,
    warmup_size: int = 4096,
    use_fork: bool = True,
) -> tuple[MicroResult, ...]:
    """One-way sweep that simulates the shared prefix once and forks per size.

    With ``use_fork`` (and ``os.fork`` available) the warm prefix —
    cluster construction, connect, handshake, a fixed-size warmup stream —
    runs once; each sweep point then runs its measured phase in a forked
    child inheriting that exact state.  Without fork the same two phases
    run in-process with the prefix rebuilt per size.  The two modes are
    bit-identical (a forked child's heap *is* the freshly built prefix),
    which ``tests/checkpoint/test_warm_sweep.py`` asserts; the fork path
    just stops paying for the prefix ``len(sizes)`` times.

    Results are deliberately *not* cached in the ``micro_point`` cache:
    the warm protocol (fixed-size warmup) differs from ``run_one_way``'s
    per-size warmup, so the numbers are comparable within a warm sweep,
    not with cold :func:`~repro.bench.runner.micro_sweep` points.
    """
    from ..checkpoint.fork import HAVE_FORK, fork_map

    if use_fork and HAVE_FORK:
        cluster, a, b = _warm_prefix(config, seed, warmup, warmup_size)
        thunks = [
            (lambda s=size: _measured_point(cluster, a, b, s))
            for size in sizes
        ]
        return tuple(fork_map(thunks))
    results = []
    for size in sizes:
        cluster, a, b = _warm_prefix(config, seed, warmup, warmup_size)
        results.append(_measured_point(cluster, a, b, size))
    return tuple(results)


def parallel_app_runs(
    specs: Sequence[AppPoint],
    processes: Optional[int] = None,
) -> list:
    """Run ``(app_name, config, nodes, seed)`` specs in parallel; returns
    results in input order (and leaves them cached for ``app_run``)."""
    run_points(apps=specs, processes=processes)
    return [app_run(*spec) for spec in specs]
