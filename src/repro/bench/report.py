"""Plain-text reporting: aligned tables and paper-vs-measured rows.

The benchmark harness prints the same rows/series the paper reports so a
reader can eyeball shape fidelity.  Nothing here depends on matplotlib —
output is terminal text, suitable for ``pytest -s`` and CI logs.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

__all__ = ["Table", "fmt", "check_band", "band_str"]


def fmt(value: Any, digits: int = 2) -> str:
    """Human formatting: floats trimmed, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


class Table:
    """Aligned plain-text table with a title."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([fmt(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())


def band_str(band: tuple[float, float]) -> str:
    return f"{fmt(band[0])}..{fmt(band[1])}"


def check_band(
    value: float, band: tuple[float, float], slack: float = 0.0
) -> bool:
    """True when ``value`` falls in ``band`` (± relative ``slack``)."""
    lo, hi = band
    span = hi - lo
    return lo - slack * span <= value <= hi + slack * span
