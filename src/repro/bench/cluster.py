"""Cluster construction for the paper's experimental setups (§3).

Four configurations are modelled, exactly as named in the paper:

* ``1L-1G``  — 16 nodes, one Broadcom Tigon-3 1-GbE NIC each, one switch.
* ``1L-10G`` — 4 nodes, one Myricom 10-GbE NIC each, one switch.
* ``2L-1G``  — 16 nodes, two 1-GbE NICs each, two switches (one per rail);
  MultiEdge delivers all frames in order (buffering at the receiver).
* ``2Lu-1G`` — like 2L-1G but frames may be delivered out of order when no
  ordering restriction (fence) applies.

A :class:`Cluster` owns the simulator, all nodes/stacks, one switch per
rail, and a connection cache, so micro-benchmarks and the DSM runtime can
ask for node pairs without re-wiring anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..control import DetectorParams, EdgeLifecycleManager, HealthParams
from ..core import ConnectionHandle, MultiEdgeStack, ProtocolParams, establish
from ..ethernet import (
    LinkParams,
    NicParams,
    Switch,
    SwitchParams,
    connect_nic_to_switch,
)
from ..ethernet.link import Cable
from ..host import HostParams, Node, myri10g_params, tigon3_params
from ..sim import RngRegistry, Simulator
from ..sim.trace import Tracer

__all__ = ["ClusterConfig", "Cluster", "CONFIG_NAMES", "make_cluster"]


@dataclass
class ClusterConfig:
    """Everything needed to stand up one experimental setup.

    ``leaf_switches > 1`` builds the multi-switch topology the paper's §6
    names as future work: nodes are spread over that many leaf switches
    per rail, each leaf connected to one spine switch by a single uplink
    (``uplink_speed_bps``, default the node link speed — i.e. the fabric
    is oversubscribed ``nodes_per_leaf : 1`` for cross-leaf traffic).

    ``fabric`` selects the full datacenter fabric subsystem instead: a
    :class:`~repro.fabric.LeafSpineSpec` or
    :class:`~repro.fabric.FatTreeSpec` builds one ECMP-routed multi-switch
    fabric per rail (see :mod:`repro.fabric`).  ``None`` — the default —
    keeps the classic wiring byte-identical.
    """

    name: str
    nodes: int
    rails: int
    nic_factory: Callable[[], NicParams]
    link: LinkParams
    switch: SwitchParams
    host: HostParams = field(default_factory=HostParams)
    protocol: ProtocolParams = field(default_factory=ProtocolParams)
    seed: int = 0
    leaf_switches: int = 1
    uplink_speed_bps: Optional[float] = None
    # Multi-switch fabric spec (repro.fabric); None = classic wiring.
    fabric: Optional[object] = None
    # Hybrid-fidelity fast path (repro.fastpath): fast-forward flows in
    # analytic steady state instead of simulating every frame.  Off by
    # default — frame-level traces stay bit-identical to the seed engine.
    fastpath: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("a cluster needs at least 1 node")
        if self.rails < 1:
            raise ValueError("rails must be >= 1")
        if self.leaf_switches < 1:
            raise ValueError("leaf_switches must be >= 1")
        if self.leaf_switches > 1 and self.nodes < self.leaf_switches:
            raise ValueError("need at least one node per leaf switch")
        if self.fabric is not None:
            if self.leaf_switches > 1:
                raise ValueError(
                    "fabric and leaf_switches are mutually exclusive"
                )
            if self.nodes > self.fabric.capacity:
                raise ValueError(
                    f"{self.nodes} nodes exceed the fabric's capacity "
                    f"of {self.fabric.capacity} hosts"
                )


def _config_1l_1g(nodes: int = 16) -> ClusterConfig:
    return ClusterConfig(
        name="1L-1G",
        nodes=nodes,
        rails=1,
        nic_factory=tigon3_params,
        link=LinkParams(speed_bps=1e9, propagation_ns=500),
        switch=SwitchParams(ports=max(nodes, 2), forwarding_latency_ns=1_000,
                            output_queue_frames=160),
        protocol=ProtocolParams(in_order_delivery=False),
    )


def _config_1l_10g(nodes: int = 4) -> ClusterConfig:
    return ClusterConfig(
        name="1L-10G",
        nodes=nodes,
        rails=1,
        nic_factory=myri10g_params,
        link=LinkParams(speed_bps=10e9, propagation_ns=500),
        switch=SwitchParams(ports=max(nodes, 2), forwarding_latency_ns=800,
                            output_queue_frames=256),
        protocol=ProtocolParams(in_order_delivery=False),
    )


def _config_2l_1g(nodes: int = 16) -> ClusterConfig:
    cfg = _config_1l_1g(nodes)
    return replace(
        cfg,
        name="2L-1G",
        rails=2,
        protocol=ProtocolParams(in_order_delivery=True),
    )


def _config_2lu_1g(nodes: int = 16) -> ClusterConfig:
    cfg = _config_1l_1g(nodes)
    return replace(
        cfg,
        name="2Lu-1G",
        rails=2,
        protocol=ProtocolParams(in_order_delivery=False),
    )


_CONFIG_FACTORIES = {
    "1L-1G": _config_1l_1g,
    "1L-10G": _config_1l_10g,
    "2L-1G": _config_2l_1g,
    "2Lu-1G": _config_2lu_1g,
}

CONFIG_NAMES = tuple(_CONFIG_FACTORIES)


def make_cluster(
    config: str,
    nodes: Optional[int] = None,
    seed: int = 0,
    synthetic_payloads: bool = False,
    **overrides,
) -> "Cluster":
    """Build a cluster by configuration name, optionally resized/reseeded.

    ``synthetic_payloads=True`` switches the protocol layer to length-only
    frames (no payload bytes are allocated or copied); timing and results
    are identical, so benchmark harnesses use it to cut wall time.
    """
    try:
        factory = _CONFIG_FACTORIES[config]
    except KeyError:
        raise ValueError(
            f"unknown configuration {config!r}; choose from {CONFIG_NAMES}"
        ) from None
    cfg = factory(nodes) if nodes is not None else factory()
    if overrides:
        cfg = replace(cfg, **overrides)
    if synthetic_payloads:
        cfg = replace(
            cfg, protocol=replace(cfg.protocol, synthetic_payloads=True)
        )
    cfg = replace(cfg, seed=seed)
    return Cluster(cfg)


class Cluster:
    """A wired cluster: nodes, switches, and cached connections."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)

        self.stacks: list[MultiEdgeStack] = []
        nodes = []
        for node_id in range(config.nodes):
            node = Node(
                self.sim,
                node_id,
                host_params=config.host,
                nic_params=[config.nic_factory() for _ in range(config.rails)],
                rng=self.rng,
            )
            nodes.append(node)
            self.stacks.append(MultiEdgeStack(node, config.protocol))

        self.switches: list[Switch] = []  # flat per-rail switches
        self.spines: list[Switch] = []  # per-rail spine (multi-leaf only)
        self.leaves: list[list[Switch]] = []  # per-rail leaf switches
        self.fabrics: list = []  # per-rail repro.fabric.Fabric
        # (node_id, rail) -> the full-duplex cable to that NIC's switch
        # port.  The fault driver and repair paths need both directions.
        self._cables: dict[tuple[int, int], Cable] = {}
        if config.fabric is not None:
            self._wire_fabric(nodes)
        elif config.leaf_switches <= 1:
            self._wire_flat(nodes)
        else:
            self._wire_leaf_spine(nodes)

        self.tracer = Tracer(self.sim)
        self._connections: dict[tuple[int, int], tuple[ConnectionHandle, ConnectionHandle]] = {}
        # (node_id, peer_node_id) -> that endpoint's lifecycle manager.
        self.control_planes: dict[tuple[int, int], EdgeLifecycleManager] = {}
        # Crash/restart coordinator (repro.recovery); None until a crash
        # fault or an explicit enable_crash_recovery() asks for it, so the
        # default path carries zero recovery state.
        self.recovery = None
        # Differential gray scorer (repro.control.grayscore); None until
        # enable_gray_detection() asks for it.
        self.gray_scorer = None
        # Flow-level fast-forward manager (repro.fastpath); None keeps
        # every connection on the exact frame-level path.
        self.fastpath = None
        if config.fastpath:
            self.enable_fastpath()

    def _wire_flat(self, nodes) -> None:
        config = self.config
        self.switches = [
            Switch(self.sim, config.switch, name=f"switch{rail}")
            for rail in range(config.rails)
        ]
        for node in nodes:
            for rail in range(config.rails):
                self._cables[(node.node_id, rail)] = connect_nic_to_switch(
                    self.sim,
                    node.nics[rail],
                    self.switches[rail],
                    port_index=node.node_id,
                    link_params=config.link,
                    rng=self.rng,
                )

    def _wire_fabric(self, nodes) -> None:
        """One ECMP-routed multi-switch fabric per rail (repro.fabric)."""
        from ..fabric import build_fabric  # lazy: default path stays lean

        config = self.config
        for rail in range(config.rails):
            fabric = build_fabric(
                self.sim,
                config.fabric,
                rail=rail,
                seed=config.seed,
                switch_params=config.switch,
                link_params=config.link,
                rng=self.rng,
            )
            for node in nodes:
                self._cables[(node.node_id, rail)] = fabric.attach_host(
                    node.node_id,
                    node.nics[rail],
                    link_params=config.link,
                    rng=self.rng,
                )
            fabric.program_routes()
            self.fabrics.append(fabric)

    def _wire_leaf_spine(self, nodes) -> None:
        """Two-level fabric: leaves hold nodes, one spine joins leaves."""
        config = self.config
        n_leaves = config.leaf_switches
        per_leaf = (config.nodes + n_leaves - 1) // n_leaves
        uplink_speed = config.uplink_speed_bps or config.link.speed_bps
        uplink_params = LinkParams(
            speed_bps=uplink_speed,
            propagation_ns=config.link.propagation_ns,
            bit_error_rate=config.link.bit_error_rate,
        )
        for rail in range(config.rails):
            leaf_cfg = SwitchParams(
                ports=per_leaf + 1,
                forwarding_latency_ns=config.switch.forwarding_latency_ns,
                output_queue_frames=config.switch.output_queue_frames,
            )
            spine_cfg = SwitchParams(
                ports=max(2, n_leaves),
                forwarding_latency_ns=config.switch.forwarding_latency_ns,
                output_queue_frames=config.switch.output_queue_frames,
            )
            spine = Switch(self.sim, spine_cfg, name=f"spine{rail}")
            leaves = [
                Switch(self.sim, leaf_cfg, name=f"leaf{rail}.{l}")
                for l in range(n_leaves)
            ]
            for l, leaf in enumerate(leaves):
                # Uplink: last leaf port <-> spine port l.
                up_port = leaf.port(per_leaf)
                spine_port = spine.port(l)
                cable = Cable(
                    self.sim, up_port, spine_port, uplink_params, self.rng,
                    name=f"uplink{rail}.{l}",
                )
                up_port.attach_link(cable.link_from(up_port), uplink_speed)
                spine_port.attach_link(
                    cable.link_from(spine_port), uplink_speed
                )
            for node in nodes:
                leaf_index = node.node_id // per_leaf
                local_port = node.node_id % per_leaf
                self._cables[(node.node_id, rail)] = connect_nic_to_switch(
                    self.sim,
                    node.nics[rail],
                    leaves[leaf_index],
                    port_index=local_port,
                    link_params=config.link,
                    rng=self.rng,
                )
                # Teach the fabric where every MAC lives so measurements
                # don't start with a flood storm.
                mac = node.nics[rail].mac
                spine.learn(mac, leaf_index)
                for other_index, other_leaf in enumerate(leaves):
                    if other_index != leaf_index:
                        other_leaf.learn(mac, per_leaf)  # via the uplink
            self.spines.append(spine)
            self.leaves.append(leaves)
            self.switches.append(spine)  # stats: count spine in switches

    @property
    def all_switches(self) -> list[Switch]:
        if self.fabrics:
            return [sw for fabric in self.fabrics for sw in fabric.switches]
        out = list(self.spines)
        for rail_leaves in self.leaves:
            out.extend(rail_leaves)
        if not out:
            out = list(self.switches)
        return out

    @property
    def nodes(self) -> list[Node]:
        return [s.node for s in self.stacks]

    def connect(self, i: int, j: int) -> tuple[ConnectionHandle, ConnectionHandle]:
        """Connection between nodes ``i`` and ``j`` (cached, symmetric).

        Returns ``(endpoint_at_i, endpoint_at_j)``.
        """
        if i == j:
            raise ValueError("cannot connect a node to itself")
        key = (min(i, j), max(i, j))
        if key not in self._connections:
            a, b = establish(
                self.stacks[key[0]], self.stacks[key[1]], self.config.protocol
            )
            self._connections[key] = (a, b)
            if self.fastpath is not None:
                self.fastpath.attach(a.conn)
                self.fastpath.attach(b.conn)
        a, b = self._connections[key]
        return (a, b) if i < j else (b, a)

    def connect_all_pairs(self) -> None:
        """Pre-establish every pairwise connection (DSM runs need this)."""
        n = self.config.nodes
        for i in range(n):
            for j in range(i + 1, n):
                self.connect(i, j)

    # -- edge lifecycle control plane ------------------------------------

    def cable(self, node: int, rail: int) -> Cable:
        """The full-duplex cable between ``node``'s ``rail`` NIC and its
        switch port (fault injection and repair act on this)."""
        try:
            return self._cables[(node, rail)]
        except KeyError:
            raise ValueError(f"no cable for node {node} rail {rail}") from None

    def enable_edge_control(
        self,
        i: int,
        j: int,
        detector_params: Optional[DetectorParams] = None,
        health_params: Optional[HealthParams] = None,
    ) -> tuple[EdgeLifecycleManager, EdgeLifecycleManager]:
        """Run the edge lifecycle control plane on both ends of (i, j).

        Establishes the connection if needed, then attaches one
        :class:`~repro.control.EdgeLifecycleManager` per endpoint
        (heartbeat probes + failure detection + automatic failover).
        Edge state transitions are recorded through :attr:`tracer` under
        category ``"edge.state"``.
        """
        a, b = self.connect(i, j)
        self.tracer.enable("edge.state")
        managers = []
        for node_id, handle in ((i, a), (j, b)):
            peer = handle.conn.peer_node_id
            key = (node_id, peer)
            mgr = self.control_planes.get(key)
            if mgr is None:
                mgr = EdgeLifecycleManager(
                    self.sim,
                    handle.conn,
                    detector_params=detector_params,
                    health_params=health_params,
                    tracer=self.tracer,
                )
                self.control_planes[key] = mgr
                if self.recovery is not None:
                    self.recovery.watch_manager(mgr)
                if self.gray_scorer is not None:
                    self.gray_scorer.watch(mgr)
            managers.append(mgr)
        return managers[0], managers[1]

    def enable_fastpath(self):
        """Attach the hybrid-fidelity fast path (idempotent).

        Installs a :class:`~repro.fastpath.FastpathManager`: existing and
        future connections get a flow-level forwarder, and every link,
        NIC, and switch port gets a discontinuity guard that aborts jumps
        on faults, ECN marks, queue pressure, or power events.  Returns
        the manager.
        """
        if self.fastpath is None:
            from ..fastpath import FastpathManager

            self.fastpath = FastpathManager(self)
            self.fastpath.attach_all()
        return self.fastpath

    def enable_crash_recovery(self, params=None):
        """Attach the whole-node crash/recovery coordinator (idempotent).

        Returns the cluster's :class:`~repro.recovery.ClusterRecovery`.
        Called automatically when a :class:`~repro.control.FaultSchedule`
        contains :class:`~repro.control.Crash` / \
        :class:`~repro.control.Restart` events.
        """
        if self.recovery is None:
            from ..recovery import ClusterRecovery

            self.recovery = ClusterRecovery(self, params)
        return self.recovery

    def enable_gray_detection(self, params=None):
        """Attach the differential gray scorer (idempotent).

        Compares every watched edge's health EWMAs against the population
        median (:mod:`repro.control.grayscore`); outliers enter the
        DEGRADED lifecycle state and have their striping score capped.
        Watches every control plane that exists now, and
        :meth:`enable_edge_control` adds any attached later, so call
        order does not matter.
        """
        if self.gray_scorer is None:
            from ..control.grayscore import GrayScorer

            self.gray_scorer = GrayScorer(
                self.sim, list(self.control_planes.values()), params
            )
        return self.gray_scorer

    def set_ecn_threshold(self, frames: Optional[int]) -> None:
        """Enable (or disable with None) ECN marking on every switch.

        Must be called before traffic flows; marking starts immediately on
        every output queue whose depth is at or above ``frames``.
        """
        seen = set()
        for sw in self.all_switches:
            if id(sw.params) not in seen:
                seen.add(id(sw.params))
                sw.params.ecn_threshold_frames = frames

    def enable_frame_tracing(self) -> None:
        """Record every NIC TX/RX completion into :attr:`tracer`."""
        self.tracer.enable("frame.tx", "frame.rx")
        for node in self.nodes:
            for nic in node.nics:
                nic.tracer = self.tracer

    # -- cluster-wide statistics -----------------------------------------

    def total_frames_dropped(self) -> int:
        """Frames lost anywhere: switch queues, NIC rings, CRC, outages."""
        dropped = sum(sw.dropped_total for sw in self.all_switches)
        for node in self.nodes:
            for nic in node.nics:
                dropped += nic.counters.rx_dropped_ring_full
                dropped += nic.counters.rx_dropped_crc
        return dropped

    def total_irqs(self) -> int:
        return sum(
            nic.counters.irqs_raised for node in self.nodes for nic in node.nics
        )

    def total_data_frames(self) -> int:
        return sum(
            s.protocol.total_stats().data_frames_sent for s in self.stacks
        )
