"""The paper's three micro-benchmarks (§3): ping-pong, one-way, two-way.

All three run between two nodes of a cluster:

* **ping-pong** — remote memory writes in request-reply fashion; requests
  and replies carry the same payload.  Reported latency is one-way
  memory-to-memory time (half the round trip, measured at notification
  delivery).
* **one-way** — back-to-back remote memory writes in one direction.
  Reported "latency" is the host overhead to initiate an operation
  (the paper measures ≈2 µs).
* **two-way** — both nodes run one-way simultaneously, exercising send and
  receive paths concurrently; reported throughput is the sum of both
  directions (as the paper specifies).

Each run returns a :class:`MicroResult` with throughput, latency, CPU
utilization (out of ``200 %`` for two CPUs, like the paper's Figure 2c),
and the network-level statistics analysed in §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import ConnectionHandle, merge_stats
from ..ethernet import OpFlags
from ..sim import all_of
from .cluster import Cluster

__all__ = ["MicroResult", "run_ping_pong", "run_one_way", "run_two_way", "run_micro"]


@dataclass
class MicroResult:
    """Outcome of one micro-benchmark run at one transfer size."""

    benchmark: str
    config: str
    size: int
    iterations: int
    elapsed_ns: int
    latency_us: float  # ping-pong: one-way mem-to-mem; one/two-way: host overhead
    throughput_mbps: float  # MBytes/s, summed over directions for two-way
    cpu_util_pct: float  # protocol CPU, out of 200 % (max over the two nodes)
    out_of_order_fraction: float
    extra_frame_fraction: float
    frames_dropped: int
    irqs: int
    data_frames: int

    @property
    def interrupt_fraction(self) -> float:
        """Fraction of frames that caused an interrupt (paper Fig 3d/5d)."""
        total = self.data_frames
        return self.irqs / total if total else 0.0


def _collect(
    cluster: Cluster,
    benchmark: str,
    size: int,
    iterations: int,
    elapsed: int,
    latency_us: float,
    total_payload_bytes: int,
    directions: int,
) -> MicroResult:
    a, b = cluster.stacks[0], cluster.stacks[1]
    stats = merge_stats(
        [a.protocol.total_stats(), b.protocol.total_stats()]
    )
    util = max(
        node.protocol_utilization(elapsed) for node in (a.node, b.node)
    )
    throughput = (
        total_payload_bytes / (elapsed / 1e9) / 1e6 if elapsed > 0 else 0.0
    )
    return MicroResult(
        benchmark=benchmark,
        config=cluster.config.name,
        size=size,
        iterations=iterations,
        elapsed_ns=elapsed,
        latency_us=latency_us,
        throughput_mbps=throughput,
        cpu_util_pct=util * 100.0,
        out_of_order_fraction=stats.out_of_order_fraction,
        extra_frame_fraction=stats.extra_frame_fraction,
        frames_dropped=cluster.total_frames_dropped(),
        irqs=cluster.total_irqs(),
        data_frames=stats.data_frames_sent,
    )


def _reset_measurement(cluster: Cluster) -> None:
    from ..core.stats import ConnectionStats

    for stack in cluster.stacks:
        for conn in stack.protocol.connections.values():
            conn.stats = ConnectionStats()
        stack.node.reset_accounting()
    if cluster.fastpath is not None:
        cluster.fastpath.stats.reset()


def run_ping_pong(
    cluster: Cluster,
    size: int,
    iterations: Optional[int] = None,
    warmup: int = 5,
) -> MicroResult:
    """Request-reply remote writes between nodes 0 and 1."""
    if iterations is None:
        iterations = 30
    a, b = cluster.connect(0, 1)
    src_a = a.node.memory.alloc(size)
    dst_b = b.node.memory.alloc(size)
    src_b = b.node.memory.alloc(size)
    dst_a = a.node.memory.alloc(size)

    state = {"start": 0, "rounds": 0}

    def node_a():
        for i in range(warmup + iterations):
            if i == warmup:
                _reset_measurement(cluster)
                state["start"] = cluster.sim.now
            yield from a.rdma_write(src_a, dst_b, size, flags=OpFlags.NOTIFY)
            yield from a.wait_notification()
            state["rounds"] += 1

    def node_b():
        for _ in range(warmup + iterations):
            yield from b.wait_notification()
            yield from b.rdma_write(src_b, dst_a, size, flags=OpFlags.NOTIFY)

    cluster.sim.process(node_b())
    proc = cluster.sim.process(node_a())
    cluster.sim.run_until_done(proc, limit=600_000_000_000)
    elapsed = cluster.sim.now - state["start"]
    one_way_ns = elapsed / (2 * iterations)
    # Each direction moves `size` per round trip.
    payload = size * iterations * 2
    return _collect(
        cluster, "ping-pong", size, iterations, elapsed,
        latency_us=one_way_ns / 1000.0,
        total_payload_bytes=payload,
        directions=2,
    )


def _one_way_stream(
    handle: ConnectionHandle,
    peer: ConnectionHandle,
    size: int,
    count: int,
    src: int,
    dst: int,
    issue_times: Optional[list] = None,
):
    """Issue ``count`` back-to-back writes; last one carries NOTIFY."""
    sim = handle.node.sim
    handles = []
    for i in range(count):
        flags = OpFlags.NOTIFY if i == count - 1 else 0
        t0 = sim.now
        h = yield from handle.rdma_write(src, dst, size, flags=flags)
        if issue_times is not None:
            issue_times.append(sim.now - t0)
        handles.append(h)
    for h in handles:
        yield from h.wait()


def run_one_way(
    cluster: Cluster,
    size: int,
    iterations: Optional[int] = None,
    warmup: int = 4,
    min_bytes: int = 4_000_000,
) -> MicroResult:
    """Back-to-back writes node 0 → node 1."""
    a, b = cluster.connect(0, 1)
    if iterations is None:
        iterations = max(8, min(512, min_bytes // size))
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    issue_times: list[int] = []
    state = {"start": 0, "end": 0}

    def sender():
        # Warmup round.
        yield from _one_way_stream(a, b, size, warmup, src, dst)
        _reset_measurement(cluster)
        state["start"] = cluster.sim.now
        yield from _one_way_stream(a, b, size, iterations, src, dst, issue_times)

    def receiver():
        yield from b.wait_notification()  # warmup notify
        yield from b.wait_notification()  # measured notify
        state["end"] = cluster.sim.now

    rproc = cluster.sim.process(receiver())
    cluster.sim.process(sender())
    cluster.sim.run_until_done(rproc, limit=600_000_000_000)
    elapsed = state["end"] - state["start"]
    host_overhead_us = (sum(issue_times) / len(issue_times)) / 1000.0
    return _collect(
        cluster, "one-way", size, iterations, elapsed,
        latency_us=host_overhead_us,
        total_payload_bytes=size * iterations,
        directions=1,
    )


def run_two_way(
    cluster: Cluster,
    size: int,
    iterations: Optional[int] = None,
    warmup: int = 4,
    min_bytes: int = 4_000_000,
) -> MicroResult:
    """Simultaneous one-way streams in both directions."""
    a, b = cluster.connect(0, 1)
    if iterations is None:
        iterations = max(8, min(512, min_bytes // size))
    src_a, dst_a = a.node.memory.alloc(size), a.node.memory.alloc(size)
    src_b, dst_b = b.node.memory.alloc(size), b.node.memory.alloc(size)
    issue_times: list[int] = []
    state = {"start": 0, "end_a": 0, "end_b": 0, "warm": 0}
    warm_barrier = cluster.sim.event()

    def stream(handle, src, dst, who):
        yield from _one_way_stream(handle, None, size, warmup, src, dst)
        # Synchronise measurement start across both directions.
        state["warm"] += 1
        if state["warm"] == 2:
            _reset_measurement(cluster)
            state["start"] = cluster.sim.now
            warm_barrier.trigger()
        else:
            yield warm_barrier
        yield from _one_way_stream(
            handle, None, size, iterations, src, dst, issue_times
        )

    def sink(handle, who):
        yield from handle.wait_notification()  # warmup
        yield from handle.wait_notification()  # measured
        state[who] = cluster.sim.now

    cluster.sim.process(stream(a, src_a, dst_b, "a"))
    cluster.sim.process(stream(b, src_b, dst_a, "b"))
    pa = cluster.sim.process(sink(b, "end_a"))  # a's data lands at b
    pb = cluster.sim.process(sink(a, "end_b"))
    cluster.sim.run_until_done(pa, limit=600_000_000_000)
    cluster.sim.run_until_done(pb, limit=600_000_000_000)
    elapsed = max(state["end_a"], state["end_b"]) - state["start"]
    host_overhead_us = (sum(issue_times) / len(issue_times)) / 1000.0
    return _collect(
        cluster, "two-way", size, iterations, elapsed,
        latency_us=host_overhead_us,
        total_payload_bytes=2 * size * iterations,
        directions=2,
    )


_RUNNERS = {
    "ping-pong": run_ping_pong,
    "one-way": run_one_way,
    "two-way": run_two_way,
}


def run_micro(benchmark: str, cluster: Cluster, size: int, **kw) -> MicroResult:
    """Dispatch by benchmark name."""
    try:
        runner = _RUNNERS[benchmark]
    except KeyError:
        raise ValueError(
            f"unknown micro-benchmark {benchmark!r}; choose from {sorted(_RUNNERS)}"
        ) from None
    return runner(cluster, size, **kw)
