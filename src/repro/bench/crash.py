"""Crash scenario runner: kill a whole node mid-stream, measure recovery.

:func:`run_crash` is the reusable harness behind the crash acceptance
test, ``benchmarks/bench_crash.py``, and the example script.  It runs a
paced exactly-once message stream (:class:`~repro.recovery.ReliableChannel`)
from node 0 to node 1 over a two-node cluster with the edge lifecycle
control plane and crash recovery enabled, crashes the *receiver* at a
configured time, restarts it after a boot delay, and reports the full
recovery timeline:

* when the sender's control plane escalated to PEER_DOWN (detection),
* when the reconnect dial landed (and the detection-to-reconnect
  latency, vs the parameter-derived bound
  :meth:`~repro.recovery.RecoveryParams.reconnect_bound_ns`),
* goodput before the crash and after recovery,
* exactly-once accounting: every message delivered exactly once at the
  receiver despite journal redelivery across the reconnect.

Everything is deterministic: same parameters + same seed give the same
:class:`CrashResult`, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..control import Crash, DetectorParams, FaultSchedule, Restart
from ..recovery import RecoveryParams
from .cluster import make_cluster

__all__ = ["CrashResult", "CrashRun", "run_crash"]

_MS = 1_000_000


@dataclass
class CrashResult:
    """Everything measured by one :func:`run_crash` run."""

    config: str
    message_bytes: int
    messages_sent: int
    messages_delivered: int  # journal entries acked (exactly-once stream)
    redeliveries: int  # entries re-issued after the reconnect
    duplicates_suppressed: int  # redeliveries deduped at the receiver
    stale_frames_rejected: int  # dead-incarnation frames dropped
    crash_ns: int
    restart_delay_ns: int
    detected_ns: Optional[int]  # sender-side PEER_DOWN escalation time
    reconnected_ns: Optional[int]  # reconnect dial established
    reconnect_bound_ns: int  # parameter-derived worst case
    pre_crash_goodput_bps: float
    recovered_goodput_bps: float
    exactly_once: bool  # receiver log holds each message exactly once
    violations: tuple[str, ...] = ()  # invariant monitor findings
    timeline: list[tuple[str, int]] = field(default_factory=list)

    @property
    def reconnect_latency_ns(self) -> Optional[int]:
        """Detection-to-reconnected time (None if never reconnected)."""
        if self.detected_ns is None or self.reconnected_ns is None:
            return None
        return self.reconnected_ns - self.detected_ns

    @property
    def recovered_fraction(self) -> float:
        """Recovered goodput as a fraction of the pre-crash baseline."""
        if self.pre_crash_goodput_bps <= 0:
            return 0.0
        return self.recovered_goodput_bps / self.pre_crash_goodput_bps

    @property
    def ok(self) -> bool:
        return (
            self.exactly_once
            and not self.violations
            and self.reconnected_ns is not None
        )


class CrashRun:
    """A :func:`run_crash` execution split into pausable phases.

    Construction wires the cluster, channel, faults, and stream process
    without advancing time; :meth:`run_to` executes events up to an exact
    instant (e.g. inside the crash window); :meth:`finish` completes the
    run and computes the :class:`CrashResult`.  Used by the checkpoint
    witness suite — ``run_to(T)`` + ``finish()`` is scheduling-identical
    to a bare ``finish()``.
    """

    def __init__(
        self,
        config: str = "2Lu-1G",
        message_bytes: int = 2048,
        message_interval_ns: int = 50_000,
        crash_ns: int = 10 * _MS,
        restart_delay_ns: int = 5 * _MS,
        run_ns: int = 60 * _MS,
        seed: int = 0,
        recovery_params: Optional[RecoveryParams] = None,
        detector_params: Optional[DetectorParams] = None,
        use_monitor: bool = True,
    ) -> None:
        self.config = config
        self.message_bytes = message_bytes
        self.crash_ns = crash_ns
        self.restart_delay_ns = restart_delay_ns
        self.run_ns = run_ns
        # Rebuild recipe for repro.checkpoint.
        self.recipe = {
            "config": config,
            "message_bytes": message_bytes,
            "message_interval_ns": message_interval_ns,
            "crash_ns": crash_ns,
            "restart_delay_ns": restart_delay_ns,
            "run_ns": run_ns,
            "seed": seed,
            "recovery_params": recovery_params,
            "detector_params": detector_params,
            "use_monitor": use_monitor,
        }
        cluster = self.cluster = make_cluster(
            config, nodes=2, seed=seed, synthetic_payloads=True
        )
        cluster.connect(0, 1)
        cluster.enable_edge_control(0, 1, detector_params=detector_params)
        self.recovery = cluster.enable_crash_recovery(recovery_params)
        self.monitor = None
        if use_monitor:
            from ..verify.monitor import InvariantMonitor

            self.monitor = InvariantMonitor.attach(cluster, collect=True)
        self.channel = self.recovery.channel(0, 1)
        FaultSchedule(
            [
                Crash(at_ns=crash_ns, node=1),
                Restart(at_ns=crash_ns, node=1, delay_ns=restart_delay_ns),
            ]
        ).apply(cluster)

        channel = self.channel

        def stream():
            addr = 0
            while cluster.sim.now < run_ns:
                yield from channel.send(addr, addr, message_bytes)
                addr += message_bytes
                yield message_interval_ns

        self.proc = cluster.sim.process(stream(), name="crash.stream")

    def state(self) -> dict:
        """Capture root for the checkpoint walker."""
        return {
            "cluster": self.cluster,
            "proc": self.proc,
            "channel": self.channel,
            "recovery": self.recovery,
            "monitor": self.monitor,
        }

    def run_to(self, time_ns: int) -> None:
        """Execute every event due at or before ``time_ns``, then pause."""
        self.cluster.sim.run_until_time(time_ns)

    def finish(self) -> CrashResult:
        cluster = self.cluster
        cluster.sim.run_until_done(self.proc, limit=self.run_ns + 500 * _MS)
        for mgr in list(cluster.control_planes.values()):
            mgr.stop()
        cluster.sim.run()  # drain acks, retransmits, replay tails
        return self._report()

    def _report(self) -> CrashResult:
        cluster = self.cluster
        recovery = self.recovery
        channel = self.channel
        monitor = self.monitor
        config = self.config
        message_bytes = self.message_bytes
        crash_ns = self.crash_ns
        restart_delay_ns = self.restart_delay_ns
        detected_ns = reconnected_ns = None
        if recovery.reconnect_latencies:
            at, latency = recovery.reconnect_latencies[0]
            reconnected_ns = at
            detected_ns = at - latency

        entries = channel.journal.entries
        delivered = [e for e in entries if e.delivered]

        def goodput(t0: int, t1: int) -> float:
            """Delivery goodput (bits/s) over [t0, t1)."""
            if t1 <= t0:
                return 0.0
            done = sum(
                e.length for e in delivered
                if e.delivered_at is not None and t0 <= e.delivered_at < t1
            )
            return done * 8 / ((t1 - t0) / 1e9)

        stream_end = max(
            (e.delivered_at for e in delivered if e.delivered_at is not None),
            default=0,
        )
        pre = goodput(0, min(crash_ns, stream_end))
        recovered = 0.0
        if reconnected_ns is not None:
            recovered = goodput(reconnected_ns, max(stream_end, reconnected_ns))

        # Exactly-once: the receiver's durable log must hold each journal seq
        # exactly once (the log is a set, so size == sent is the whole check),
        # and every entry the sender journaled must have been acked.
        log = recovery.nodes[1].delivered
        exactly_once = (
            len(log) == channel.messages_sent
            and len(delivered) == channel.messages_sent
        )

        violations: tuple[str, ...] = ()
        if monitor is not None:
            monitor.final_check()
            violations = tuple(str(v) for v in monitor.violations)

        dup_suppressed = recovery.duplicate_msgs_suppressed_destroyed
        stale_rejected = recovery.stale_frames_rejected_destroyed
        for stack in cluster.stacks:
            for conn in stack.protocol.connections.values():
                dup_suppressed += conn.duplicate_msgs_suppressed
                stale_rejected += conn.stale_frames_rejected

        params = recovery.params
        timeline = [("crash", crash_ns), ("restart", crash_ns + restart_delay_ns)]
        if detected_ns is not None:
            timeline.append(("detected", detected_ns))
        if reconnected_ns is not None:
            timeline.append(("reconnected", reconnected_ns))
        timeline.sort(key=lambda kv: kv[1])
        return CrashResult(
            config=config,
            message_bytes=message_bytes,
            messages_sent=channel.messages_sent,
            messages_delivered=len(delivered),
            redeliveries=channel.redeliveries,
            duplicates_suppressed=dup_suppressed,
            stale_frames_rejected=stale_rejected,
            crash_ns=crash_ns,
            restart_delay_ns=restart_delay_ns,
            detected_ns=detected_ns,
            reconnected_ns=reconnected_ns,
            reconnect_bound_ns=params.reconnect_bound_ns(restart_delay_ns),
            pre_crash_goodput_bps=pre,
            recovered_goodput_bps=recovered,
            exactly_once=exactly_once,
            violations=violations,
            timeline=timeline,
        )


def run_crash(
    config: str = "2Lu-1G",
    message_bytes: int = 2048,
    message_interval_ns: int = 50_000,
    crash_ns: int = 10 * _MS,
    restart_delay_ns: int = 5 * _MS,
    run_ns: int = 60 * _MS,
    seed: int = 0,
    recovery_params: Optional[RecoveryParams] = None,
    detector_params: Optional[DetectorParams] = None,
    use_monitor: bool = True,
) -> CrashResult:
    """Stream journaled messages 0 -> 1, crashing the receiver en route.

    The stream sends one ``message_bytes`` message every
    ``message_interval_ns`` until ``run_ns`` of simulated time; node 1 is
    crashed at ``crash_ns`` and restarted ``restart_delay_ns`` later.
    Sends issued while the connection is down block until the reconnect
    replay finishes, then resume at pace.
    """
    return CrashRun(
        config=config,
        message_bytes=message_bytes,
        message_interval_ns=message_interval_ns,
        crash_ns=crash_ns,
        restart_delay_ns=restart_delay_ns,
        run_ns=run_ns,
        seed=seed,
        recovery_params=recovery_params,
        detector_params=detector_params,
        use_monitor=use_monitor,
    ).finish()
