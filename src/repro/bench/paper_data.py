"""The paper's reported results, transcribed for paper-vs-measured tables.

Values come from the text of §4 (exact numbers where the paper states
them) and from reading Figures 2–6 (approximate bands where it does not).
Bands are expressed as ``(low, high)`` tuples.
"""

from __future__ import annotations

__all__ = [
    "FIG2_MAX_THROUGHPUT_MBPS",
    "FIG2_MIN_LATENCY_US",
    "FIG2_HOST_OVERHEAD_US",
    "FIG2_MAX_CPU_PCT",
    "MICRO_NET_STATS",
    "FIG3_SPEEDUP_BANDS",
    "FIG3_NET_STATS",
    "FIG4_SPEEDUP_BANDS",
    "FIG5_NET_STATS",
    "APP_ORDER",
    "LINK_NOMINAL_MBPS",
]

APP_ORDER = [
    "barnes",
    "fft",
    "lu",
    "radix",
    "raytrace",
    "water-nsq",
    "water-spatial",
    "water-spatial-fl",
]

LINK_NOMINAL_MBPS = {"1L-1G": 125.0, "2L-1G": 250.0, "2Lu-1G": 250.0, "1L-10G": 1250.0}

# Figure 2(b): maximum throughput in MBytes/s per configuration/benchmark.
FIG2_MAX_THROUGHPUT_MBPS = {
    ("1L-1G", "ping-pong"): 120.0,
    ("1L-1G", "one-way"): 120.0,
    ("1L-1G", "two-way"): 240.0,
    ("2L-1G", "ping-pong"): 240.0,
    ("2L-1G", "one-way"): 240.0,
    ("2L-1G", "two-way"): 480.0,
    ("1L-10G", "ping-pong"): 710.0,
    ("1L-10G", "one-way"): 1100.0,
    ("1L-10G", "two-way"): 1500.0,
}

# Figure 2(a): "minimum latency is about 30 us" (1L-10G ping-pong).
FIG2_MIN_LATENCY_US = {"1L-10G": 30.0}

# "minimum host overhead is about 2 us" (one-way / two-way initiation).
FIG2_HOST_OVERHEAD_US = 2.0

# Figure 2(c): maximum CPU utilization out of 200 % (two CPUs per node).
FIG2_MAX_CPU_PCT = {
    ("1L-1G", "ping-pong"): 35.0,
    ("1L-1G", "one-way"): 30.0,
    ("1L-1G", "two-way"): 140.0,
    ("1L-10G", "ping-pong"): 75.0,
    ("1L-10G", "one-way"): 95.0,
    ("1L-10G", "two-way"): 170.0,
}

# §4 micro-benchmark network statistics.
MICRO_NET_STATS = {
    "out_of_order_1l": (0.0, 0.02),  # "almost no out-of-order delivery"
    "out_of_order_2l": (0.10, 0.50),  # "at most 45-50 %"
    "extra_frames_max": 0.055,  # "at most 5.5 %"
    "dropped_share_of_extra": 0.20,  # "about 20 % of the extra traffic"
}

# Figure 3(a): speedups at 16 nodes over a single 1-GbE link.
FIG3_SPEEDUP_BANDS = {
    "barnes": (12.0, 15.0),
    "raytrace": (11.0, 15.0),
    "water-nsq": (12.0, 15.0),
    "lu": (5.0, 9.0),
    "water-spatial": (5.0, 9.5),
    "water-spatial-fl": (5.0, 9.5),
    "fft": (0.5, 4.0),
    "radix": (0.5, 4.0),
}

# Figure 3(c,d,e): network-level statistics for the 1L-1G application runs.
FIG3_NET_STATS = {
    "protocol_cpu_max": 0.11,  # "does not exceed 11 %"
    "protocol_cpu_typical": 0.04,  # "for most applications ... up to 4 %"
    "interrupt_fraction": (0.10, 0.40),  # "10-40 % of the frames"
    "extra_traffic_max": 0.15,  # "at most 15 % of the application traffic"
    "out_of_order_max": 0.02,  # "almost always close to zero"
}

# Figure 4: speedups at 4 nodes over a single 10-GbE link.
FIG4_SPEEDUP_BANDS = {
    "barnes": (2.8, 4.2),
    "raytrace": (2.8, 4.2),
    "water-nsq": (2.8, 4.2),
    "lu": (2.0, 4.2),
    "water-spatial": (2.0, 4.2),
    "water-spatial-fl": (2.0, 4.2),
    "fft": (0.3, 2.5),
    "radix": (0.3, 2.5),
}

# Figure 5(b-e): two-rail (in-order) application network statistics.
FIG5_NET_STATS = {
    "protocol_cpu_max": 0.12,
    "out_of_order": (0.10, 0.55),  # "between 10-50 % ... not in order"
    "mean_reorder_distance": (1.0, 12.0),  # "re-ordering every 2-10 frames"
    "extra_traffic_max_high": 0.10,  # raytrace, water-nsq
    "extra_traffic_max_rest": 0.04,
    "interrupt_fraction": (0.05, 0.40),  # "10-35 % of frames"
}
