"""Gray-off serving runs are fingerprint-identical to the pre-gray tree.

The gray-failure machinery (``faults=``, ``tail=``, ``gray_detection=``)
is opt-in: a serving run that passes none of them must execute
byte-for-byte the same event sequence it did before the subsystem
existed.  These fingerprints were captured from the repo HEAD
immediately before the gray-failure PR landed (the RPC serving PR); any
drift here means the default serving path changed behaviour — including
its pinned quirks, like the crash-path replay accounting.
"""

from repro.bench.serve import run_serve
from repro.serve import ArrivalSpec, ServerSpec

MS = 1_000_000

# Scenario builders + the fingerprint each produced at the pre-gray HEAD.
PINNED = [
    (
        dict(
            config="1L-1G", n_clients=2, n_servers=2, policy="round-robin",
            duration_ns=8 * MS, seed=1,
        ),
        "ddb88d1c3b5b6dd1a62b50a752b3cf339204b89529a4cd1e5a625f4b005056ee",
    ),
    (
        dict(
            config="2L-1G", n_clients=2, n_servers=3,
            policy="least-outstanding",
            arrival=ArrivalSpec(kind="bursty", rate_rps=15_000),
            duration_ns=8 * MS, seed=5,
        ),
        "e873f2021caadc1023fe60ca18d2667efc1af6f5e7c257e84b5dd0cebc774973",
    ),
    (
        # The crash+replay path, monitor attached — exercises the legacy
        # crash bookkeeping that tail-mode deliberately replaced.
        dict(
            config="1L-1G", n_clients=2, n_servers=2, policy="round-robin",
            duration_ns=10 * MS, seed=3, crash_server=2, crash_ns=3 * MS,
            restart_delay_ns=2 * MS, use_monitor=True,
        ),
        "5913422a195a22efaacb8de33037ba1a9a80f0ebdb8eccaf1ca0139f8a723a38",
    ),
]


def test_gray_off_serving_runs_match_pre_gray_fingerprints():
    for kwargs, want in PINNED:
        res = run_serve(server=ServerSpec(), **kwargs)
        assert not res.violations, (kwargs, res.violations)
        assert res.fingerprint == want, (
            f"gray-off serving run {kwargs} drifted from the pre-gray "
            f"baseline: {res.fingerprint}"
        )
