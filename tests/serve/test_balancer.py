"""Load-balancing policies: rotation, queue-awareness, leaf affinity."""

from types import SimpleNamespace

import pytest

from repro.bench.cluster import make_cluster
from repro.fabric import LeafSpineSpec
from repro.serve import (
    POLICIES,
    LeafAffinity,
    LeastOutstanding,
    RoundRobin,
    leaf_of,
    make_balancer,
)
from repro.serve.arrivals import Request


def _req(client=0):
    return Request(
        req_id=1, client=client, t_arrival=0, req_bytes=64, resp_bytes=64,
        deadline_ns=0,
    )


def test_round_robin_rotates_in_rank_order():
    lb = RoundRobin([4, 2, 3])
    picks = [lb.choose(_req()) for _ in range(6)]
    assert picks == [4, 2, 3, 4, 2, 3]


def test_round_robin_skips_dead_servers():
    lb = RoundRobin([1, 2, 3])
    lb.mark_down(2)
    assert [lb.choose(_req()) for _ in range(4)] == [1, 3, 1, 3]
    lb.mark_up(2)
    assert 2 in [lb.choose(_req()) for _ in range(3)]


def test_mark_up_ignores_strangers():
    lb = RoundRobin([1, 2])
    lb.mark_up(99)
    assert 99 not in lb.alive


def test_least_outstanding_tracks_load():
    lb = LeastOutstanding([5, 6])
    assert lb.choose(_req()) == 5  # tie -> lowest rank
    lb.note_dispatch(5)
    assert lb.choose(_req()) == 6
    lb.note_dispatch(6)
    lb.note_dispatch(6)
    assert lb.choose(_req()) == 5
    lb.note_done(6)
    lb.note_done(6)
    lb.note_done(6)  # extra done never goes negative
    assert lb.outstanding[6] == 0


def test_choose_respects_candidate_restriction():
    lb = LeastOutstanding([1, 2, 3])
    assert lb.choose(_req(), candidates={3}) == 3
    assert lb.choose(_req(), candidates=set()) is None
    lb.mark_down(3)
    assert lb.choose(_req(), candidates={3}) is None


def test_no_servers_rejected():
    with pytest.raises(ValueError):
        RoundRobin([])


def test_leaf_affinity_prefers_local_leaf():
    # leaves of size 2: nodes 0,1 on leaf 0; 2,3 on leaf 1.
    leaf = lambda n: n // 2
    lb = LeafAffinity([1, 2, 3], leaf_lookup=leaf)
    assert lb.choose(_req(client=0)) == 1  # same leaf as client 0
    assert lb.choose(_req(client=3)) == 2  # leaf 1: servers 2, 3
    # All local servers down -> falls back to the remote pool.
    lb.mark_down(1)
    assert lb.choose(_req(client=0)) in (2, 3)


def test_leaf_affinity_balances_within_leaf():
    leaf = lambda n: 0  # everything local -> pure least-outstanding
    lb = LeafAffinity([1, 2], leaf_lookup=leaf)
    lb.note_dispatch(1)
    assert lb.choose(_req()) == 2


def test_leaf_of_fabric_and_classic_and_single():
    fabric_cluster = SimpleNamespace(
        config=SimpleNamespace(
            fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=3),
            leaf_switches=1,
            nodes=6,
        )
    )
    assert [leaf_of(fabric_cluster, n) for n in range(6)] == [0, 0, 0, 1, 1, 1]

    classic = SimpleNamespace(
        config=SimpleNamespace(fabric=None, leaf_switches=2, nodes=4)
    )
    assert [leaf_of(classic, n) for n in range(4)] == [0, 0, 1, 1]

    single = SimpleNamespace(
        config=SimpleNamespace(fabric=None, leaf_switches=1, nodes=4)
    )
    assert [leaf_of(single, n) for n in range(4)] == [0, 0, 0, 0]


def test_make_balancer_by_name():
    assert make_balancer("round-robin", [1]).name == "round-robin"
    assert make_balancer("least-outstanding", [1]).name == "least-outstanding"
    cluster = make_cluster("1L-1G", nodes=2)
    assert make_balancer("leaf-affinity", [1], cluster).name == "leaf-affinity"
    with pytest.raises(ValueError):
        make_balancer("leaf-affinity", [1])  # needs topology
    with pytest.raises(ValueError):
        make_balancer("random", [1])
    assert set(POLICIES) == {
        "round-robin", "least-outstanding", "leaf-affinity"
    }
