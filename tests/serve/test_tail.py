"""Tail-tolerance machinery: budget, breakers, ejection, hedging.

Unit tests pin each mechanism's contract in isolation — the token
bucket's amplification bound, the breaker's legal state machine, the
ejector's differential judgement and fail-open cap — then an
integration test drives the full serving stack against a gray replica
and checks that hedging actually buys the p99 back without breaking
request conservation.
"""

import pytest

from repro.bench.serve import run_serve
from repro.control import SlowNode
from repro.serve import ArrivalSpec, ServerSpec, TailSpec
from repro.serve.tail import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    OutlierEjector,
    QuantileTracker,
    RetryBudget,
    TailController,
)

MS = 1_000_000


# ---------------------------------------------------------------------------
# TailSpec validation
# ---------------------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError):
        TailSpec(hedge_quantile=0.0)
    with pytest.raises(ValueError):
        TailSpec(hedge_min_delay_ns=2, hedge_max_delay_ns=1)
    with pytest.raises(ValueError):
        TailSpec(max_hedges=-1)
    with pytest.raises(ValueError):
        TailSpec(retry_budget=-0.1)
    with pytest.raises(ValueError):
        TailSpec(retry_burst=0)
    with pytest.raises(ValueError):
        TailSpec(max_attempts=0)
    with pytest.raises(ValueError):
        TailSpec(breaker_failures=0)
    with pytest.raises(ValueError):
        TailSpec(breaker_half_open_probes=0)
    with pytest.raises(ValueError):
        TailSpec(eject_factor=1.0)
    with pytest.raises(ValueError):
        TailSpec(max_eject_fraction=1.0)
    with pytest.raises(ValueError):
        TailSpec(eject_alpha=0.0)


# ---------------------------------------------------------------------------
# RetryBudget
# ---------------------------------------------------------------------------


def test_budget_starts_with_burst_and_caps_there():
    b = RetryBudget(ratio=0.1, burst=3)
    assert [b.try_spend() for _ in range(3)] == [True, True, True]
    assert not b.try_spend()  # bucket dry
    assert b.spent == 3 and b.denied == 1
    b.on_fresh(1000)  # earnings cap at the burst depth
    assert b.tokens == 3.0
    assert b.earned == 1000


def test_budget_earn_ratio():
    b = RetryBudget(ratio=0.1, burst=100)
    b.tokens = 0.0
    b.on_fresh(9)
    assert not b.try_spend()  # 0.9 tokens: not yet a whole attempt
    b.on_fresh(1)
    assert b.try_spend()  # 1.0 tokens
    assert not b.try_spend()
    assert b.denied == 2


def test_budget_amplification_bound():
    # spent can never exceed burst + ratio * earned, however hard we try.
    b = RetryBudget(ratio=0.05, burst=5)
    for _ in range(1000):
        b.on_fresh()
        b.try_spend()
        b.try_spend()
    assert b.spent <= b.burst + b.ratio * b.earned


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


def _spec(**kw):
    defaults = dict(breaker_failures=3, breaker_open_ns=5 * MS,
                    breaker_half_open_probes=2)
    defaults.update(kw)
    return TailSpec(**defaults)


def test_breaker_opens_after_consecutive_failures():
    br = CircuitBreaker(_spec())
    br.on_failure(1)
    br.on_failure(2)
    assert br.state == BREAKER_CLOSED
    br.on_success(3)  # success resets the streak
    br.on_failure(4)
    br.on_failure(5)
    br.on_failure(6)
    assert br.state == BREAKER_OPEN
    assert br.opens == 1
    assert not br.allow(6 + 4 * MS)  # still inside the open window


def test_breaker_half_open_probe_accounting():
    br = CircuitBreaker(_spec())
    for t in (1, 2, 3):
        br.on_failure(t)
    t = 3 + 5 * MS
    assert br.allow(t)  # open window elapsed -> HALF_OPEN
    assert br.state == BREAKER_HALF_OPEN
    br.note_dispatch(t)
    assert br.allow(t)  # one probe left
    br.note_dispatch(t)
    assert not br.allow(t)  # probes exhausted, no verdict yet
    br.on_success(t + 1)
    assert br.state == BREAKER_CLOSED
    assert br.allow(t + 1)


def test_breaker_half_open_failure_reopens():
    br = CircuitBreaker(_spec())
    for t in (1, 2, 3):
        br.on_failure(t)
    t = 3 + 5 * MS
    assert br.allow(t)
    br.note_dispatch(t)
    br.on_failure(t + 1)
    assert br.state == BREAKER_OPEN
    assert br.opens == 2
    assert br.opened_at == t + 1  # the open window restarts


def test_breaker_transitions_all_legal():
    br = CircuitBreaker(_spec())
    for t in (1, 2, 3):
        br.on_failure(t)
    br.allow(3 + 5 * MS)
    br.note_dispatch(3 + 5 * MS)
    br.on_failure(3 + 5 * MS + 1)
    br.allow(br.opened_at + 5 * MS)
    br.on_success(br.opened_at + 5 * MS + 1)
    from repro.serve.tail import LEGAL_BREAKER_TRANSITIONS

    assert len(br.transitions) == 5
    for _, old, new in br.transitions:
        assert (old, new) in LEGAL_BREAKER_TRANSITIONS


# ---------------------------------------------------------------------------
# OutlierEjector
# ---------------------------------------------------------------------------


def _feed(ej, server, latency, n, now):
    for _ in range(n):
        ej.on_sample(server, latency, now)


def test_ejector_flags_the_slow_server():
    spec = _spec(eject_min_samples=5, eject_factor=2.0, eject_ns=10 * MS)
    ej = OutlierEjector(spec, servers=[1, 2, 3, 4])
    for s in (1, 2, 3):
        _feed(ej, s, 100_000, 5, now=1 * MS)
    _feed(ej, 4, 500_000, 5, now=1 * MS)
    assert ej.is_ejected(4, 2 * MS)
    assert not any(ej.is_ejected(s, 2 * MS) for s in (1, 2, 3))
    assert ej.ejections == 1


def test_ejector_expiry_forgets_gray_history():
    spec = _spec(eject_min_samples=3, eject_ns=10 * MS)
    ej = OutlierEjector(spec, servers=[1, 2, 3, 4])
    for s in (1, 2, 3):
        _feed(ej, s, 100_000, 3, now=0)
    _feed(ej, 4, 900_000, 3, now=0)
    assert ej.is_ejected(4, 1)
    assert not ej.is_ejected(4, 10 * MS)  # expired
    # Post-recovery the server is judged fresh, not on the gray EWMA.
    assert ej.samples[4] == 0 and ej.ewma[4] == 0.0


def test_ejector_fraction_cap():
    # max_eject_fraction=0.5 of a 4-pool allows at most 2 ejections.
    spec = _spec(eject_min_samples=2, max_eject_fraction=0.5)
    ej = OutlierEjector(spec, servers=[1, 2, 3, 4])
    _feed(ej, 1, 100_000, 2, now=0)
    _feed(ej, 2, 100_000, 2, now=0)
    _feed(ej, 3, 900_000, 2, now=0)
    _feed(ej, 4, 900_000, 2, now=0)
    ejected = [s for s in (1, 2, 3, 4) if ej.is_ejected(s, 1)]
    assert len(ejected) <= 2
    assert 1 not in ejected and 2 not in ejected


def test_ejector_needs_peers():
    spec = _spec(eject_min_samples=2)
    ej = OutlierEjector(spec, servers=[1, 2])
    _feed(ej, 1, 900_000, 5, now=0)  # only one judged server: no median
    assert not ej.is_ejected(1, 1)


# ---------------------------------------------------------------------------
# QuantileTracker
# ---------------------------------------------------------------------------


def test_quantile_tracker_tracks_p95():
    qt = QuantileTracker(95.0)
    for i in range(1, 101):
        qt.record(i * 1_000)
    assert qt.total == 100
    v = qt.value()
    assert 90_000 <= v <= 101_000


# ---------------------------------------------------------------------------
# TailController composition
# ---------------------------------------------------------------------------


def test_filter_candidates_fails_open():
    ctl = TailController(_spec(eject_min_samples=2), servers=[1, 2])
    for t in (1, 2, 3):
        ctl.breakers[1].on_failure(t)
        ctl.breakers[2].on_failure(t)
    # Every breaker open: filtering must fall back to the full pool.
    out = ctl.filter_candidates({1, 2}, now=4)
    assert out == {1, 2}
    assert ctl.fail_open == 1


def test_filter_candidates_drops_open_breaker():
    ctl = TailController(_spec(), servers=[1, 2])
    for t in (1, 2, 3):
        ctl.breakers[2].on_failure(t)
    assert ctl.filter_candidates({1, 2}, now=4) == {1}


def test_hedge_delay_warmup_and_clamp():
    spec = _spec(hedge_warmup=10, hedge_min_delay_ns=200_000,
                 hedge_max_delay_ns=1 * MS)
    ctl = TailController(spec, servers=[1])
    assert ctl.hedge_delay_ns() is None  # not warmed up
    for _ in range(40):
        ctl.on_success(1, 50_000, now=0)
    assert ctl.hedge_delay_ns() == 200_000  # clamped up to the floor
    for _ in range(40):
        ctl.on_success(1, 50 * MS, now=0)
    assert ctl.hedge_delay_ns() == 1 * MS  # clamped down to the ceiling


def test_hedge_disabled_returns_none():
    ctl = TailController(_spec(hedge=False), servers=[1])
    for _ in range(100):
        ctl.on_success(1, 500_000, now=0)
    assert ctl.hedge_delay_ns() is None


# ---------------------------------------------------------------------------
# Integration: hedging against a gray replica
# ---------------------------------------------------------------------------


def _gray_run(tail):
    return run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=8,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=30_000,
                            request_bytes=("fixed", 128),
                            response_bytes=("fixed", 512), batch=128),
        server=ServerSpec(queue_cap=64, workers=4, service=("exp", 40_000)),
        duration_ns=12 * MS,
        seed=11,
        faults=[SlowNode(at_ns=2 * MS, node=2, duration_ns=9 * MS,
                         factor=10.0)],
        tail=tail,
    )


def test_hedging_recovers_tail_and_conserves_requests():
    unmit = _gray_run(None)
    mit = _gray_run(TailSpec())
    for r in (unmit, mit):
        assert not r.violations, r.violations
        assert r.generated == (
            r.completed + r.shed + r.shed_client + r.failed
        )
    assert mit.hedges_sent > 0
    assert mit.hedges_won > 0
    # Duplicate (losing) responses were absorbed, not double-counted.
    assert mit.duplicate_responses > 0
    assert mit.p99_ns < unmit.p99_ns
