"""Serve-off runs are fingerprint-identical to the pre-serving tree.

The serving layer is opt-in: a cluster without :func:`enable_serving`
must execute byte-for-byte the same event sequence it did before the
subsystem existed.  These fingerprints were captured from the repo HEAD
immediately before ``repro.serve`` landed (the checkpoint/restore PR);
any drift here means the default path changed behaviour.
"""

from repro.bench.cluster import make_cluster
from repro.mp import MpWorld
from repro.verify.fuzz import fingerprint

# (config, nodes, seed) -> fingerprint at the pre-serving HEAD.
PINNED = {
    ("1L-1G", 4, 0):
        "75d90b1d748c7746913ded2857a2b2ee243d133a5e3cb880bf8d80803ed7e3cb",
    ("2L-1G", 3, 7):
        "a705a7d395dccf86a367367f379cf1d6b2575c8d4d30d2974e2d7e18026fc6d0",
    ("1L-10G", 2, 42):
        "becf6fb4486a3e99dee8b12b3044c0f93fb276ff06994cd81c7319b8de7445db",
}


def _echo_run(config, nodes, seed):
    cluster = make_cluster(config, nodes=nodes, seed=seed)
    world = MpWorld(cluster)

    def program(ep):
        if ep.rank == 0:
            for peer in range(1, ep.size):
                for k in range(4):
                    yield from ep.send(peer, bytes(64 + k), tag=7)
                    msg = yield from ep.recv(source=peer, tag=8)
                    assert len(msg.data) == 128
        else:
            for k in range(4):
                msg = yield from ep.recv(source=0, tag=7)
                yield from ep.send(0, bytes(128), tag=8)
        return ep.stats_received

    world.run(program)
    cluster.sim.run()
    return cluster, fingerprint(cluster)


def test_serve_disabled_runs_match_pre_serving_fingerprints():
    for (config, nodes, seed), want in PINNED.items():
        cluster, got = _echo_run(config, nodes, seed)
        assert got == want, (
            f"serve-off run ({config}, nodes={nodes}, seed={seed}) drifted "
            f"from the pre-serving baseline: {got}"
        )
        # And the serving layer never attached itself.
        assert getattr(cluster, "serve", None) is None
