"""Open-loop arrival sources: batching, determinism, and rate fidelity."""

import numpy as np
import pytest

from repro.serve import ArrivalSpec, ArrivalSource
from repro.serve.arrivals import draw_size
from repro.sim import Simulator

_MS = 1_000_000


def _collect(spec, duration_ns, seed=0, **kw):
    sim = Simulator()
    out = []
    source = ArrivalSource(
        sim,
        np.random.default_rng(seed),
        spec,
        client=0,
        deliver=out.append,
        stop_at_ns=duration_ns,
        **kw,
    )
    source.start()
    sim.run(until=duration_ns)
    return source, out


def test_spec_validation():
    with pytest.raises(ValueError):
        ArrivalSpec(kind="constant")
    with pytest.raises(ValueError):
        ArrivalSpec(rate_rps=0)
    with pytest.raises(ValueError):
        ArrivalSpec(batch=0)


def test_draw_size_distributions():
    rng = np.random.default_rng(3)
    assert draw_size(rng, ("fixed", 777)) == 777
    for _ in range(200):
        assert 10 <= draw_size(rng, ("uniform", 10, 20)) <= 20
        assert draw_size(rng, ("exp", 100)) >= 1
    with pytest.raises(ValueError):
        draw_size(rng, ("zipf", 2))


def test_poisson_arrivals_are_deterministic():
    spec = ArrivalSpec(kind="poisson", rate_rps=50_000, batch=32)
    _, a = _collect(spec, 5 * _MS, seed=11)
    _, b = _collect(spec, 5 * _MS, seed=11)
    assert [r.t_arrival for r in a] == [r.t_arrival for r in b]
    assert [(r.req_bytes, r.resp_bytes) for r in a] == [
        (r.req_bytes, r.resp_bytes) for r in b
    ]
    _, c = _collect(spec, 5 * _MS, seed=12)
    assert [r.t_arrival for r in a] != [r.t_arrival for r in c]


def test_poisson_rate_is_honest():
    """Open-loop: the realized rate tracks the configured rate."""
    spec = ArrivalSpec(kind="poisson", rate_rps=100_000)
    _, reqs = _collect(spec, 50 * _MS, seed=5)
    expect = 100_000 * 50 * _MS / 1e9
    assert 0.9 * expect < len(reqs) < 1.1 * expect
    times = [r.t_arrival for r in reqs]
    assert times == sorted(times)
    assert all(0 <= t < 50 * _MS for t in times)


def test_single_armed_event_regardless_of_rate():
    """Batched generation: one pending scheduler event per source, with
    whole batches pre-drawn — never a timer per request."""
    spec = ArrivalSpec(kind="poisson", rate_rps=1_000_000, batch=64)
    sim = Simulator()
    out = []
    source = ArrivalSource(
        sim, np.random.default_rng(1), spec, client=0,
        deliver=out.append, stop_at_ns=10 * _MS,
    )
    source.start()
    assert source.armed
    assert source.pending_batch == 64
    sim.run(until=100_000)
    # ~100 arrivals in; still exactly one armed event, and the pending
    # batch shrinks monotonically until the next refill.
    assert source.armed
    assert len(out) > 50
    assert source.batches_generated >= 1
    assert 0 <= source.pending_batch <= 64


def test_stop_at_cuts_arrivals_exactly():
    spec = ArrivalSpec(kind="poisson", rate_rps=80_000)
    source, reqs = _collect(spec, 2 * _MS, seed=9)
    assert all(r.t_arrival < 2 * _MS for r in reqs)
    assert not source.armed
    assert source.pending_batch == 0  # stopped sources hold no batch


def test_max_requests_cap():
    spec = ArrivalSpec(kind="poisson", rate_rps=80_000)
    source, reqs = _collect(spec, 50 * _MS, max_requests=17)
    assert len(reqs) == 17
    assert source.generated == 17
    assert not source.armed


def test_req_ids_are_sequential_from_base():
    spec = ArrivalSpec(kind="poisson", rate_rps=50_000)
    _, reqs = _collect(spec, 2 * _MS, req_id_base=1 << 40)
    assert [r.req_id for r in reqs] == [
        (1 << 40) + i for i in range(len(reqs))
    ]


def test_bursty_modulates_rate():
    """MMPP(2): the on-phase rate shows up as bursts — more arrivals
    than the base rate alone, fewer than the burst rate sustained."""
    base = ArrivalSpec(kind="poisson", rate_rps=10_000)
    burst = ArrivalSpec(
        kind="bursty",
        rate_rps=10_000,
        burst_rate_rps=200_000,
        mean_on_ns=1 * _MS,
        mean_off_ns=1 * _MS,
    )
    _, base_reqs = _collect(base, 40 * _MS, seed=21)
    _, burst_reqs = _collect(burst, 40 * _MS, seed=21)
    assert len(burst_reqs) > 1.5 * len(base_reqs)
    assert len(burst_reqs) < 200_000 * 40 * _MS / 1e9


def test_bursty_is_deterministic_across_batches():
    """Phase state persists across batch refills without drift."""
    spec = ArrivalSpec(
        kind="bursty", rate_rps=50_000, burst_rate_rps=200_000, batch=16
    )
    src_a, a = _collect(spec, 20 * _MS, seed=2)
    src_b, b = _collect(spec, 20 * _MS, seed=2)
    assert [r.t_arrival for r in a] == [r.t_arrival for r in b]
    assert src_a.batches_generated == src_b.batches_generated
    assert src_a.batches_generated > 1  # the run crossed refills


def test_stop_disarms_pending_event():
    spec = ArrivalSpec(kind="poisson", rate_rps=10_000)
    sim = Simulator()
    out = []
    source = ArrivalSource(
        sim, np.random.default_rng(4), spec, client=0, deliver=out.append
    )
    source.start()
    source.stop()
    sim.run(until=10 * _MS)
    assert out == []
    assert not source.armed
