"""The post-run drain is bounded even when a crash beats detection.

A server that dies just before the run ends leaves the failure detector
mid-escalation: PEER_DOWN never fires, survivor-side connections keep
retransmitting into the void, and without a bound the drain would spin
forever.  ``ServeRun.finish()`` caps the drain at ``drain_grace_ns``
past the nominal duration; request accounting must still close because
crash replay is driven by the recovery manager, not by detection.
"""

from repro.bench.serve import ServeRun
from repro.control import Crash
from repro.serve import ArrivalSpec, ServerSpec

MS = 1_000_000

_ARRIVAL = ArrivalSpec(kind="poisson", rate_rps=20_000, batch=64)
_SERVER = ServerSpec(queue_cap=32, workers=2, service=("fixed", 50_000))


def _conserved(res):
    return res.generated == (
        res.completed + res.shed + res.shed_client + res.failed
    )


def test_late_crash_drain_is_bounded():
    # Crash 2ms before the end: inside the detector's escalation window,
    # so PEER_DOWN never fires before traffic stops.
    run = ServeRun(
        config="1L-1G",
        n_clients=2,
        n_servers=2,
        policy="round-robin",
        arrival=_ARRIVAL,
        server=_SERVER,
        duration_ns=10 * MS,
        seed=6,
        crash_server=3,
        crash_ns=8 * MS,
        restart_delay_ns=1 * MS,
        use_monitor=True,
        drain_grace_ns=50 * MS,
    )
    res = run.finish()
    assert res.elapsed_ns <= 10 * MS + 50 * MS
    assert not res.violations, res.violations
    assert _conserved(res), (
        res.generated, res.completed, res.shed, res.shed_client, res.failed
    )
    assert res.generated > 0 and res.completed > 0


def test_late_crash_without_restart_drain_is_bounded():
    # No restart at all: the dead server stays dead through the drain.
    run = ServeRun(
        config="1L-1G",
        n_clients=2,
        n_servers=2,
        policy="round-robin",
        arrival=_ARRIVAL,
        server=_SERVER,
        duration_ns=10 * MS,
        seed=6,
        faults=[Crash(at_ns=8 * MS, node=3)],
        use_monitor=True,
        drain_grace_ns=50 * MS,
    )
    res = run.finish()
    assert res.elapsed_ns <= 10 * MS + 50 * MS
    assert not res.violations, res.violations
    assert _conserved(res)
    # Work aimed at the corpse was failed or replayed, never leaked.
    assert res.pending == 0


def test_clean_run_needs_only_inflight_grace():
    # Without a late crash the drain only has to cover the last requests
    # still in flight at the cutoff — a couple of milliseconds, not the
    # 50ms escalation-sized window the crash cases lean on.
    run = ServeRun(
        config="1L-1G",
        n_clients=2,
        n_servers=2,
        policy="round-robin",
        arrival=_ARRIVAL,
        server=_SERVER,
        duration_ns=10 * MS,
        seed=6,
        use_monitor=True,
        drain_grace_ns=2 * MS,
    )
    res = run.finish()
    assert res.elapsed_ns <= 12 * MS
    assert not res.violations, res.violations
    assert _conserved(res)
