"""The serving runtime end to end: conservation, overload, crashes.

Every scenario runs over the real mp/RDMA stack (no shortcuts), asserts
the request-conservation invariant, and the fault scenarios exercise
the client-side journal replay across server crash + reconnect.
"""

import pytest

from repro.analysis import SloSpec, summarize_cluster
from repro.bench.cluster import make_cluster
from repro.bench.serve import ServeRun, run_serve
from repro.serve import ArrivalSpec, ServeConfig, ServerSpec

_MS = 1_000_000


def test_config_validation():
    with pytest.raises(ValueError):
        ServeConfig(clients=(), servers=(1,))
    with pytest.raises(ValueError):
        ServeConfig(clients=(0,), servers=(0, 1))  # overlapping ranks
    with pytest.raises(ValueError):
        ServeConfig(clients=(0,), servers=(1,), duration_ns=0)


def test_synthetic_payload_cluster_rejected():
    from repro.mp import MpWorld
    from repro.serve import enable_serving

    cluster = make_cluster("1L-1G", nodes=2, synthetic_payloads=True)
    world = MpWorld(cluster)
    with pytest.raises(ValueError, match="synthetic_payloads"):
        enable_serving(
            cluster, world, ServeConfig(clients=(0,), servers=(1,))
        )


def test_steady_state_conservation_and_decomposition():
    r = run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=2,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=40_000, batch=64),
        server=ServerSpec(queue_cap=64, workers=4, service=("fixed", 10_000)),
        duration_ns=5 * _MS,
        seed=2,
    )
    assert r.ok, r.violations
    assert r.generated > 100
    assert r.generated == r.completed  # nothing shed, failed, or pending
    # Phase decomposition: every completion contributed one sample per
    # phase, and service time can never undercut the fixed service model.
    assert r.service_p99_ns >= 10_000
    assert r.p99_ns >= r.service_p99_ns
    # Both servers took traffic.
    assert all(v > 0 for v in r.server_served.values())


def test_runs_are_deterministic():
    import dataclasses

    kw = dict(
        n_clients=2,
        n_servers=2,
        arrival=ArrivalSpec(rate_rps=30_000),
        duration_ns=4 * _MS,
        seed=6,
    )
    assert dataclasses.asdict(run_serve(**kw)) == dataclasses.asdict(
        run_serve(**kw)
    )


def test_overload_sheds_explicitly():
    """Queue at capacity -> shed response + counter, never silent growth."""
    r = run_serve(
        n_clients=1,
        n_servers=1,
        arrival=ArrivalSpec(kind="poisson", rate_rps=50_000, batch=64),
        server=ServerSpec(queue_cap=2, workers=1, service=("fixed", 100_000)),
        duration_ns=5 * _MS,
        seed=4,
    )
    assert r.ok, r.violations
    assert r.shed > 0
    assert r.generated == r.completed + r.shed
    assert max(r.server_peak_queue.values()) <= 2
    assert r.shed_fraction > 0.3  # rate is ~5x service capacity


def test_client_outbox_cap_sheds_at_the_client():
    r = run_serve(
        config="1L-1G",
        n_clients=1,
        n_servers=1,
        arrival=ArrivalSpec(
            kind="poisson", rate_rps=80_000,
            request_bytes=("fixed", 4096), batch=64,
        ),
        server=ServerSpec(queue_cap=256, workers=4, service=("fixed", 1_000)),
        duration_ns=5 * _MS,
        outbox_cap=4,
        seed=8,
    )
    assert r.ok, r.violations
    assert r.shed_client > 0


def test_deadline_miss_accounting():
    r = run_serve(
        n_clients=1,
        n_servers=1,
        arrival=ArrivalSpec(
            kind="poisson", rate_rps=30_000, deadline_ns=50_000, batch=64
        ),
        server=ServerSpec(queue_cap=64, workers=1, service=("fixed", 80_000)),
        duration_ns=3 * _MS,
        seed=10,
    )
    assert r.ok, r.violations
    # Service alone exceeds the deadline: every completion missed it.
    assert r.deadline_missed == r.completed > 0


def test_slo_report_and_windows():
    slo = SloSpec(p99_ms=5.0, max_shed_fraction=0.5)
    r = run_serve(
        n_clients=2,
        n_servers=2,
        arrival=ArrivalSpec(rate_rps=20_000),
        duration_ns=10 * _MS,
        window_ns=2 * _MS,
        slo=slo,
        seed=12,
    )
    assert r.ok, r.violations
    assert r.slo_attained is True
    assert "p99" in r.slo_clauses and "shed" in r.slo_clauses
    assert len(r.windows) >= 4
    assert sum(w["generated"] for w in r.windows) == r.generated
    assert sum(w["completed"] for w in r.windows) == r.completed
    assert all("attained" in w for w in r.windows)


def test_crash_replays_journal_and_recovers():
    r = run_serve(
        config="1L-10G",
        n_clients=2,
        n_servers=2,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=40_000, batch=64),
        server=ServerSpec(queue_cap=64, workers=4, service=("fixed", 15_000)),
        duration_ns=30 * _MS,
        seed=14,
        crash_server=3,
        crash_ns=8 * _MS,
        restart_delay_ns=4 * _MS,
    )
    assert r.ok, r.violations
    assert r.crashes == 1
    assert r.reconnects >= 1
    assert r.replayed > 0
    # The journal replay means the crash loses nothing.
    assert r.generated == r.completed
    # The crashed server served again after reconnect: its share of the
    # completions exceeds what it served before dying.
    assert r.server_served[3] > 0


def test_single_server_crash_parks_then_drains():
    """With no surviving server, requests park in the holding queue and
    drain when the crashed server reconnects."""
    r = run_serve(
        config="1L-10G",
        n_clients=1,
        n_servers=1,
        arrival=ArrivalSpec(kind="poisson", rate_rps=20_000, batch=64),
        server=ServerSpec(queue_cap=256, workers=4, service=("fixed", 5_000)),
        duration_ns=40 * _MS,
        seed=16,
        crash_server=1,
        crash_ns=10 * _MS,
        restart_delay_ns=5 * _MS,
    )
    assert r.ok, r.violations
    assert r.crashes == 1 and r.reconnects >= 1
    assert r.generated == r.completed
    assert r.pending == 0


def test_summary_carries_serve_counters():
    run = ServeRun(
        n_clients=1,
        n_servers=1,
        arrival=ArrivalSpec(rate_rps=20_000),
        duration_ns=3 * _MS,
        seed=18,
    )
    result = run.finish()
    s = summarize_cluster(run.cluster)
    assert s.requests_generated == result.generated > 0
    assert s.requests_completed == result.completed
    assert s.serve_p99_ns == result.p99_ns
    assert s.serve_shed_fraction == result.shed_fraction


def test_monitor_reports_serve_invariant_breakage():
    """A cooked conservation violation surfaces through final_check."""
    run = ServeRun(
        n_clients=1,
        n_servers=1,
        arrival=ArrivalSpec(rate_rps=20_000),
        duration_ns=2 * _MS,
        seed=20,
        use_monitor=True,
    )
    run.cluster.sim.run_until_time(run.duration_ns)
    run.cluster.sim.run(until=run.duration_ns + 100 * _MS)
    run.runtime.generated += 5  # cook the books
    monitor = run.monitor
    monitor.final_check()
    assert any("serve-invariant" in str(v) for v in monitor.violations)
