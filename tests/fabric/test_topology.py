"""Fabric topology builder: shapes, routes, and structural invariants."""

import pytest

from repro.bench.cluster import make_cluster
from repro.fabric import FatTreeSpec, LeafSpineSpec, build_fabric
from repro.sim import Simulator


def leaf_spine(leaves=2, spines=2, hosts_per_leaf=2, **kw):
    sim = Simulator()
    spec = LeafSpineSpec(
        leaves=leaves, spines=spines, hosts_per_leaf=hosts_per_leaf, **kw
    )
    return build_fabric(sim, spec)


class TestLeafSpineShape:
    def test_switch_and_trunk_counts(self):
        fab = leaf_spine(leaves=3, spines=2)
        tiers = fab.tiers()
        assert len(tiers["leaf"]) == 3
        assert len(tiers["spine"]) == 2
        # Full mesh between tiers: one trunk per (leaf, spine) pair.
        assert len(fab.trunks) == 6

    def test_switch_names_follow_rail_and_index(self):
        fab = leaf_spine(leaves=2, spines=2)
        assert set(fab.by_name) == {
            "leaf0.0", "leaf0.1", "spine0.0", "spine0.1"
        }

    def test_leaf_radix_hosts_plus_uplinks(self):
        fab = leaf_spine(leaves=2, spines=3, hosts_per_leaf=4)
        assert fab.by_name["leaf0.0"].params.ports == 4 + 3
        # Spines need one port per leaf.
        assert fab.by_name["spine0.0"].params.ports >= 2

    def test_host_location_packs_leaves_in_order(self):
        fab = leaf_spine(leaves=2, spines=2, hosts_per_leaf=3)
        assert fab.host_location(0) == ("leaf0.0", 0)
        assert fab.host_location(2) == ("leaf0.0", 2)
        assert fab.host_location(3) == ("leaf0.1", 0)
        with pytest.raises(ValueError):
            fab.host_location(6)  # beyond capacity

    def test_oversubscription_math(self):
        spec = LeafSpineSpec(leaves=3, spines=2, hosts_per_leaf=6)
        assert spec.oversubscription(10**9) == pytest.approx(3.0)
        fast_trunks = LeafSpineSpec(
            leaves=3, spines=2, hosts_per_leaf=6, trunk_speed_bps=3e9
        )
        assert fast_trunks.oversubscription(10**9) == pytest.approx(1.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LeafSpineSpec(leaves=0)
        with pytest.raises(ValueError):
            LeafSpineSpec(hosts_per_leaf=0)


class TestFatTreeShape:
    def test_k4_is_the_classic_construction(self):
        sim = Simulator()
        fab = build_fabric(sim, FatTreeSpec(k=4))
        tiers = fab.tiers()
        assert len(tiers["core"]) == 4  # (k/2)^2
        assert len(tiers["agg"]) == 8  # k pods x k/2
        assert len(tiers["edge"]) == 8
        # k pods x (k/2)^2 edge-agg + k pods x (k/2)^2 agg-core trunks.
        assert len(fab.trunks) == 16 + 16
        assert fab.spec.capacity == 16

    def test_k_must_be_even(self):
        with pytest.raises(ValueError):
            FatTreeSpec(k=3)
        with pytest.raises(ValueError):
            FatTreeSpec(k=0)

    def test_host_location_walks_pods(self):
        sim = Simulator()
        fab = build_fabric(sim, FatTreeSpec(k=4))
        assert fab.host_location(0) == ("edge0.0.0", 0)
        assert fab.host_location(3) == ("edge0.0.1", 1)
        assert fab.host_location(4) == ("edge0.1.0", 0)


class TestRoutes:
    def _cluster(self, **kw):
        spec = LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2)
        return make_cluster(
            "1L-1G", nodes=4, seed=0, synthetic_payloads=True,
            fabric=spec, **kw
        )

    def test_every_switch_routes_every_host(self):
        cluster = self._cluster()
        fab = cluster.fabrics[0]
        for node_id, mac in fab.host_macs.items():
            for sw in fab.switches:
                assert sw.route(mac) is not None, (
                    f"{sw.name} has no route for node {node_id}"
                )

    def test_leaf_uplink_groups_are_multi_member(self):
        cluster = self._cluster()
        fab = cluster.fabrics[0]
        # leaf0.0 reaching a host behind leaf0.1 must see both spines.
        mac = fab.host_macs[2]
        group = fab.by_name["leaf0.0"].route(mac)
        assert len(group) == 2

    def test_access_route_is_the_single_host_port(self):
        cluster = self._cluster()
        fab = cluster.fabrics[0]
        sw_name, port = fab.access[1]
        assert fab.by_name[sw_name].route(fab.host_macs[1]) == (port,)

    def test_routes_are_structurally_acyclic(self):
        cluster = self._cluster()
        for fab in cluster.fabrics:
            assert fab.route_acyclicity_violations() == []

    def test_fat_tree_routes_are_structurally_acyclic(self):
        cluster = make_cluster(
            "1L-1G", nodes=8, seed=0, synthetic_payloads=True,
            fabric=FatTreeSpec(k=4),
        )
        for fab in cluster.fabrics:
            assert fab.route_acyclicity_violations() == []


class TestTrunkManagement:
    def test_trunk_lookup_either_order(self):
        fab = leaf_spine()
        assert fab.trunk("leaf0.0", "spine0.1") is fab.trunk(
            "spine0.1", "leaf0.0"
        )
        with pytest.raises(ValueError):
            fab.trunk("leaf0.0", "leaf0.1")  # no such trunk

    def test_drain_excludes_both_end_ports(self):
        fab = leaf_spine()
        leaf = fab.by_name["leaf0.0"]
        spine = fab.by_name["spine0.0"]
        port_l, port_s = fab._trunk_ports("leaf0.0", "spine0.0")
        assert leaf._port_alive(port_l) and spine._port_alive(port_s)
        fab.set_trunk_enabled("leaf0.0", "spine0.0", False)
        assert not leaf._port_alive(port_l)
        assert not spine._port_alive(port_s)
        fab.set_trunk_enabled("leaf0.0", "spine0.0", True)
        assert leaf._port_alive(port_l) and spine._port_alive(port_s)

    def test_fail_and_repair_trunk(self):
        fab = leaf_spine()
        leaf = fab.by_name["leaf0.0"]
        port_l, _ = fab._trunk_ports("leaf0.0", "spine0.0")
        fab.fail_trunk("leaf0.0", "spine0.0")
        assert not leaf._port_alive(port_l)
        fab.repair_trunk("leaf0.0", "spine0.0")
        assert leaf._port_alive(port_l)

    def test_uplink_bytes_keys_point_upward(self):
        fab = leaf_spine(leaves=2, spines=2)
        up = fab.uplink_bytes()
        assert set(up) == {
            ("leaf0.0", "spine0.0"),
            ("leaf0.0", "spine0.1"),
            ("leaf0.1", "spine0.0"),
            ("leaf0.1", "spine0.1"),
        }
        assert all(b == 0 for b in up.values())


class TestClusterIntegration:
    def test_fabric_capacity_enforced(self):
        with pytest.raises(ValueError):
            make_cluster(
                "1L-1G", nodes=5, seed=0,
                fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2),
            )

    def test_fabric_excludes_leaf_switches(self):
        with pytest.raises(ValueError):
            make_cluster(
                "2L-1G", nodes=2, seed=0, leaf_switches=2,
                fabric=LeafSpineSpec(),
            )

    def test_all_switches_reports_fabric_switches(self):
        cluster = make_cluster(
            "1L-1G", nodes=4, seed=0, synthetic_payloads=True,
            fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2),
        )
        names = {sw.name for sw in cluster.all_switches}
        assert names == {"leaf0.0", "leaf0.1", "spine0.0", "spine0.1"}

    def test_trunk_speed_override(self):
        cluster = make_cluster(
            "1L-1G", nodes=4, seed=0, synthetic_payloads=True,
            fabric=LeafSpineSpec(
                leaves=2, spines=2, hosts_per_leaf=2, trunk_speed_bps=10e9
            ),
        )
        fab = cluster.fabrics[0]
        assert fab.trunk_link.speed_bps == 10e9
        # Host access links keep the host speed.
        assert fab.host_link.speed_bps == 1e9
