"""Reorder buffer vs ECMP re-pin: a mid-flow path change must be absorbed.

When a trunk drains mid-flow, the flow re-pins onto a different spine.
With asymmetric spine forwarding latencies the frames already in flight
on the old (slow) path are overtaken by frames on the new (fast) path,
so the receiver sees genuine out-of-order arrival — exactly what the
in-order delivery machinery's reorder buffer exists to absorb.

The assertions are frame-level: the receiver buffered out-of-order
frames (the reorder actually happened), accepted no duplicates, the
sender never fell back to a coarse timeout (no stall), and the payload
arrived byte-exact.
"""

from repro.bench.cluster import make_cluster
from repro.core import ProtocolParams
from repro.fabric import LeafSpineSpec

SLOW_NS = 40_000  # forwarding latency on the initially pinned spine
SIZE = 256 * 1024


def _build():
    cluster = make_cluster(
        "1L-1G",
        nodes=4,
        seed=3,
        synthetic_payloads=False,
        fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2),
        protocol=ProtocolParams(in_order_delivery=True, window_frames=256),
    )
    return cluster, cluster.fabrics[0]


def test_repin_mid_flow_reorders_without_duplicates_or_stalls():
    cluster, fab = _build()
    a, b = cluster.connect(0, 2)  # cross-leaf: leaf0.0 -> leaf0.1
    leaf = fab.by_name["leaf0.0"]

    # Find the uplink the flow is pinned to and make *that* spine slow,
    # so the post-repin path (the other spine) is faster and the frames
    # still in flight on the old path get overtaken.
    src_mac = fab.host_macs[0]
    dst_mac = fab.host_macs[2]
    pinned = leaf.preview(src_mac, dst_mac, a.conn.conn_id)
    assert pinned is not None
    spine_idx = pinned - fab.spec.hosts_per_leaf
    slow_spine = fab.by_name[f"spine0.{spine_idx}"]
    slow_spine.params.forwarding_latency_ns = SLOW_NS
    other = fab.by_name[f"spine0.{1 - spine_idx}"]

    src = cluster.nodes[0].memory.alloc(SIZE)
    dst = cluster.nodes[2].memory.alloc(SIZE)
    payload = bytes(range(256)) * (SIZE // 256)
    cluster.nodes[0].memory.write(src, payload)

    # Drain the pinned trunk once a healthy slice of the transfer is in
    # flight; in-flight frames still arrive (administrative drain), but
    # every subsequent frame re-pins to the surviving spine.
    cluster.sim.at(
        400_000, fab.set_trunk_enabled, "leaf0.0", slow_spine.name, False
    )

    def xfer():
        h = yield from a.rdma_write(src, dst, SIZE)
        yield from h.wait()

    cluster.sim.run_until_done(cluster.sim.process(xfer()), limit=10**10)
    cluster.sim.run()

    rx = b.conn.stats
    tx = a.conn.stats
    assert cluster.nodes[2].memory.read(dst, SIZE) == payload
    # The re-pin actually happened and both spines carried data frames.
    assert leaf.repins >= 1
    assert slow_spine.forwarded > 0 and other.forwarded > 0
    # The reorder was real: the receiver buffered out-of-order frames...
    assert rx.out_of_order_frames > 0
    assert rx.buffered_frames > 0
    # ...but never accepted a duplicate, and the sender never stalled
    # into a coarse timeout.
    assert rx.duplicate_frames == 0
    assert tx.timeout_retransmits == 0
    # Delivery order to the application stayed exactly sequential.
    assert rx.data_frames_received > 0
    for fabric in cluster.fabrics:
        assert fabric.routing_invariants() == []


def test_drain_and_restore_round_trip_repins_back():
    cluster, fab = _build()
    a, _b = cluster.connect(0, 2)
    leaf = fab.by_name["leaf0.0"]
    src_mac, dst_mac = fab.host_macs[0], fab.host_macs[2]
    cid = a.conn.conn_id
    pinned = leaf.preview(src_mac, dst_mac, cid)
    trunk = f"spine0.{pinned - fab.spec.hosts_per_leaf}"
    fab.set_trunk_enabled("leaf0.0", trunk, False)
    assert leaf.preview(src_mac, dst_mac, cid) != pinned
    fab.set_trunk_enabled("leaf0.0", trunk, True)
    assert leaf.preview(src_mac, dst_mac, cid) == pinned
