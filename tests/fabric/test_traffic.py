"""Traffic matrices: expansion determinism and end-to-end execution."""

import pytest

from repro.bench.cluster import make_cluster
from repro.fabric import (
    AllToAll,
    ElephantMice,
    Hotspot,
    LeafSpineSpec,
    Permutation,
    TrafficResult,
    expand_flows,
    run_traffic,
)
from repro.sim import RngRegistry


def _rng(seed=0):
    return RngRegistry(seed).stream("test-traffic")


class TestExpansion:
    def test_permutation_is_cyclic_no_fixed_points(self):
        flows = expand_flows(Permutation(1024), 8, _rng())
        assert len(flows) == 8
        assert all(f.src != f.dst for f in flows)
        assert sorted(f.src for f in flows) == list(range(8))
        assert sorted(f.dst for f in flows) == list(range(8))

    def test_permutation_rounds_stack(self):
        flows = expand_flows(Permutation(1024, rounds=3), 6, _rng())
        assert len(flows) == 18
        assert len({f.tag for f in flows}) == 18  # tags stay unique

    def test_permutation_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            Permutation(1024, rounds=0)

    def test_all_to_all_covers_every_ordered_pair(self):
        flows = expand_flows(AllToAll(512), 4, _rng())
        assert {(f.src, f.dst) for f in flows} == {
            (i, j) for i in range(4) for j in range(4) if i != j
        }

    def test_hotspot_incast_targets_last_ranks(self):
        flows = expand_flows(Hotspot(targets=2, bytes_per_flow=512), 5, _rng())
        assert all(f.dst in (3, 4) for f in flows)
        assert all(f.src < 3 for f in flows)
        assert len(flows) == 6

    def test_hotspot_outcast_reverses_direction(self):
        flows = expand_flows(
            Hotspot(targets=1, bytes_per_flow=512, outcast=True), 4, _rng()
        )
        assert all(f.src == 3 for f in flows)
        assert {f.dst for f in flows} == {0, 1, 2}

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            Hotspot(targets=0)
        with pytest.raises(ValueError):
            expand_flows(Hotspot(targets=4), 4, _rng())

    def test_elephant_mice_mix_and_no_self_flows(self):
        spec = ElephantMice(
            elephants=3, elephant_bytes=65536, mice=10, mouse_bytes=512
        )
        flows = expand_flows(spec, 6, _rng())
        assert len(flows) == 13
        assert all(f.src != f.dst for f in flows)
        assert sum(1 for f in flows if f.size_bytes == 65536) == 3

    def test_same_stream_state_same_flows(self):
        a = expand_flows(Permutation(1024, rounds=2), 8, _rng(5))
        b = expand_flows(Permutation(1024, rounds=2), 8, _rng(5))
        assert a == b

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            expand_flows(AllToAll(), 1, _rng())


class TestEvennessMetrics:
    def _result(self, uplinks):
        return TrafficResult(
            spec_name="t", flows=0, total_bytes=0, elapsed_ns=1,
            data_intact=True, messages_received=0, switch_drops=0,
            ce_marked=0, retransmissions=0, uplink_bytes=uplinks,
        )

    def test_ecmp_evenness_aggregates_per_upper_switch(self):
        r = self._result({
            ("leaf0.0", "spine0.0"): 100,
            ("leaf0.1", "spine0.0"): 100,
            ("leaf0.0", "spine0.1"): 150,
            ("leaf0.1", "spine0.1"): 90,
        })
        assert r.ecmp_evenness == pytest.approx(240 / 200)
        assert r.trunk_evenness == pytest.approx(150 / 90)

    def test_bypassed_spine_is_infinite(self):
        r = self._result({
            ("leaf0.0", "spine0.0"): 100,
            ("leaf0.0", "spine0.1"): 0,
        })
        assert r.ecmp_evenness == float("inf")

    def test_no_fabric_is_perfect(self):
        assert self._result({}).ecmp_evenness == 1.0


class TestExecution:
    def _cluster(self, nodes=4, seed=0):
        return make_cluster(
            "1L-1G", nodes=nodes, seed=seed, synthetic_payloads=False,
            fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2),
        )

    def test_permutation_delivers_intact(self):
        r = run_traffic(self._cluster(), Permutation(8192, rounds=2), seed=0)
        assert r.data_intact
        assert r.messages_received == r.flows == 8
        assert r.total_bytes == 8 * 8192
        assert r.goodput_bps > 0

    def test_uplinks_carry_cross_leaf_traffic(self):
        cluster = self._cluster(seed=2)
        r = run_traffic(cluster, AllToAll(4096), seed=2)
        assert r.data_intact
        assert sum(r.uplink_bytes.values()) > 0
        assert [
            v for f in cluster.fabrics for v in f.routing_invariants()
        ] == []

    def test_hotspot_runs_on_fabric(self):
        r = run_traffic(
            self._cluster(seed=1), Hotspot(targets=1, bytes_per_flow=16384),
            seed=1,
        )
        assert r.data_intact and r.messages_received == 3
