"""ECMP switch unit tests: hashing, pinning, re-pinning, accounting."""

import pytest

from repro.bench.cluster import make_cluster
from repro.ethernet.frame import Frame, MultiEdgeHeader
from repro.ethernet.switch import BROADCAST_MAC
from repro.fabric import LeafSpineSpec, ecmp_hash


class TestEcmpHash:
    def test_pure_function_of_key(self):
        a = ecmp_hash("0:leaf0.0", 1, 2, 0, 7)
        b = ecmp_hash("0:leaf0.0", 1, 2, 0, 7)
        assert a == b

    def test_salt_decorrelates(self):
        keys = [(s, 1, 2, 0, 7) for s in ("0:leaf0.0", "0:leaf0.1", "1:leaf0.0")]
        assert len({ecmp_hash(*k) for k in keys}) == 3

    def test_every_field_matters(self):
        base = ecmp_hash("s", 1, 2, 0, 7)
        assert ecmp_hash("s", 9, 2, 0, 7) != base
        assert ecmp_hash("s", 1, 9, 0, 7) != base
        assert ecmp_hash("s", 1, 2, 1, 7) != base
        assert ecmp_hash("s", 1, 2, 0, 8) != base

    def test_low_bits_spread_over_sequential_conn_ids(self):
        """The splitmix finalizer must break CRC32's GF(2) linearity:
        sequential connection ids (what real runs allocate) have to land
        on both members of a 2-way group reasonably often."""
        picks = [
            ecmp_hash("0:leaf0.0", 2, 3, 0, conn_id) % 2
            for conn_id in range(1, 65)
        ]
        ones = sum(picks)
        assert 16 <= ones <= 48, f"2-way hash badly skewed: {ones}/64"


def _fabric_cluster(seed=0):
    cluster = make_cluster(
        "1L-1G", nodes=4, seed=seed, synthetic_payloads=True,
        fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2),
    )
    return cluster, cluster.fabrics[0]


def _frame(src_mac, dst_mac, conn_id=1, seq=0):
    return Frame(
        src_mac, dst_mac,
        MultiEdgeHeader(connection_id=conn_id, seq=seq, payload_length=0),
    )


class TestSelection:
    def test_preview_matches_pick_and_is_stable(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        src, dst = fab.host_macs[0], fab.host_macs[2]
        first = leaf.preview(src, dst, conn_id=1)
        assert first is not None
        for _ in range(5):
            assert leaf.preview(src, dst, conn_id=1) == first

    def test_distinct_flows_spread_over_uplinks(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        src, dst = fab.host_macs[0], fab.host_macs[2]
        ports = {leaf.preview(src, dst, conn_id=c) for c in range(1, 40)}
        group = leaf.route(dst)
        assert ports == set(group), "40 flows never used every uplink"

    def test_repin_on_drain_and_back_on_restore(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        src, dst = fab.host_macs[0], fab.host_macs[2]
        frame = _frame(src, dst, conn_id=1)
        group = leaf.route(dst)
        original = leaf._pick(frame, group)
        # Drain the chosen uplink: the flow must re-pin to the survivor.
        spine_index = original - fab.spec.hosts_per_leaf
        leaf.set_port_enabled(original, False)
        rerouted = leaf._pick(frame, group)
        assert rerouted != original
        assert leaf.repins == 1
        # Restore: the deterministic hash re-pins straight back.
        leaf.set_port_enabled(original, True)
        assert leaf._pick(frame, group) == original
        assert leaf.repins == 2
        assert leaf.pin_violations == []
        assert spine_index in (0, 1)

    def test_no_alive_member_returns_none(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        src, dst = fab.host_macs[0], fab.host_macs[2]
        group = leaf.route(dst)
        for port in group:
            leaf.set_port_enabled(port, False)
        assert leaf._pick(_frame(src, dst), group) is None

    def test_add_route_rejects_empty_group(self):
        cluster, fab = _fabric_cluster()
        with pytest.raises(ValueError):
            fab.by_name["leaf0.0"].add_route(0x99, ())


class TestForwarding:
    def test_unknown_destination_dropped_not_flooded(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        before = [p.tx_frames for p in leaf.ports]
        leaf._forward(0, _frame(1, 0xDEAD))
        assert leaf.dropped_no_route == 1
        assert [p.tx_frames for p in leaf.ports] == before

    def test_broadcast_dropped_not_flooded(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        leaf._forward(0, _frame(1, BROADCAST_MAC))
        assert leaf.dropped_no_route == 1

    def test_hairpin_dropped(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        sw_name, port = fab.access[0]
        assert sw_name == "leaf0.0"
        frame = _frame(fab.host_macs[1], fab.host_macs[0])
        leaf._forward(port, frame)
        assert leaf.dropped_hairpin == 1

    def test_hop_budget_drops_storming_frame(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        frame = _frame(fab.host_macs[0], fab.host_macs[2])
        frame.hops = fab.spec.max_hops  # one more ingress goes over budget
        leaf._ingress(1, frame)
        assert leaf.dropped_loop == 1
        assert leaf.loop_violations

    def test_learn_populates_routes_not_mac_table(self):
        """The base learning/flooding machinery must never engage: a
        multi-path fabric has physical loops, and a flood would storm."""
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        assert leaf._mac_table == {}
        assert leaf.route(fab.host_macs[0]) is not None

    def test_conservation_accounts_every_ingress(self):
        cluster, fab = _fabric_cluster()
        leaf = fab.by_name["leaf0.0"]
        leaf._forward(0, _frame(1, 0xDEAD))  # no-route drop
        # _forward was reached without _ingress in this synthetic poke,
        # so bring the ingress counter in line before checking.
        leaf.ingress_frames = 1
        assert leaf.conservation_violations() == []
        leaf.ingress_frames = 2  # one unaccounted frame
        assert leaf.conservation_violations() != []
