"""Smoke tests: every script in examples/ runs to completion.

Each example is imported as a module (so size knobs can be shrunk for
test speed) and its ``main()`` is run with stdout captured.  The checks
are exit-success plus the data-integrity markers each script prints —
an example that silently corrupts data must fail here, not just in a
reader's terminal.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"


def load_example(name: str):
    """Import examples/<name>.py as a throwaway module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # Examples import each other's namespace freely; keep sys.modules clean.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def run_main(module, argv=()) -> str:
    """Run the example's main() with a controlled argv, capturing stdout."""
    buf = io.StringIO()
    saved_argv = sys.argv
    sys.argv = [module.__name__] + list(argv)
    try:
        with redirect_stdout(buf):
            module.main()
    finally:
        sys.argv = saved_argv
    return buf.getvalue()


def test_all_examples_are_covered():
    """Every script in examples/ must have a smoke test in this file."""
    scripts = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    covered = {
        name[len("test_"):]
        for name in globals()
        if name.startswith("test_") and name != "test_all_examples_are_covered"
    }
    assert scripts <= covered, f"examples without smoke tests: {scripts - covered}"


def test_quickstart():
    out = run_main(load_example("quickstart"))
    assert "hello from node 0" in out
    assert "acks received: 1" in out


def test_failure_injection():
    out = run_main(load_example("failure_injection"))
    # Five scenarios, every one of them must report intact data.
    assert out.count("data intact=True") == 5
    assert "rail failover" in out
    assert "recovering -> up" in out


def test_multi_link_striping():
    out = run_main(load_example("multi_link_striping"))
    assert "one-way throughput" in out
    assert "\u2713" in out  # the fenced-ordering check mark


def test_microbench_suite():
    mod = load_example("microbench_suite")
    mod.SIZES = (64, 4096, 65536)  # full sweep is a benchmark, not a test
    out = run_main(mod, argv=["1L-1G"])
    for size in (64, 4096, 65536):
        assert str(size) in out
    assert "throughput" in out


def test_incast():
    mod = load_example("incast")
    mod.SENDERS = 8  # shrink the fan-in: same code paths, less wall time
    mod.CHUNKS = 4
    out = run_main(mod)
    # All three policies must deliver every byte intact.
    assert out.count("data intact=True") == 3
    for policy in ("static", "aimd", "dctcp"):
        assert policy in out


def test_dsm_matrix():
    mod = load_example("dsm_matrix")
    mod.N = 32  # shrink the matrix: same code paths, fraction of the wall time
    out = run_main(mod)
    # Every node must verify the checksum (prints a check mark per node).
    assert out.count("\u2713") == mod.NODES


def test_mp_stencil():
    mod = load_example("mp_stencil")
    mod.N = 128
    out = run_main(mod)
    assert "(OK)" in out  # parallel result matches the sequential reference


def test_node_crash():
    mod = load_example("node_crash")
    mod.RUN_NS = 30 * 1_000_000  # shrink the post-recovery tail
    out = run_main(mod)
    assert "delivered exactly once=True" in out
    assert "invariant violations=0" in out
    assert "reconnected" in out


def test_run_application():
    out = run_main(load_example("run_application"), argv=["fft", "1L-1G", "2"])
    assert "running fft" in out
    assert "data frames" in out or "network" in out.lower()


def test_leaf_spine():
    mod = load_example("leaf_spine")
    mod.ROUNDS = 4  # shrink the matrix: same code paths, less wall time
    out = run_main(mod)
    assert out.count("data intact=True") == 2
    assert "routing invariants clean=True" in out
    assert "3:1 oversubscribed" in out


def test_gray_failure():
    mod = load_example("gray_failure")
    mod.DURATION_NS = 12 * 1_000_000  # shrink the gray window
    out = run_main(mod)
    # All three serving runs conserve every request.
    assert out.count("conserved=True") == 3
    assert out.count("invariant violations=0") == 4  # + the detection run
    # Hedging actually fired and won races against the gray replica.
    sections = out.split("--- ")
    base = next(s for s in sections if s.startswith("baseline"))
    unmit = next(s for s in sections if s.startswith("gray, unmitigated"))
    mit = next(s for s in sections if s.startswith("gray, mitigated"))
    assert "hedges sent=0" in base and "hedges sent=0" in unmit
    assert "hedges sent=0" not in mit and "won=0" not in mit
    assert "recovered" in out
    # The scorer flagged the throttled edge and cleared it — never DOWN.
    assert "marks=0" not in out and "clears=0" not in out
    assert "still flagged=0" in out
    assert "DOWN transitions=0" in out


def test_serving():
    mod = load_example("serving")
    mod.DURATION_NS = 25 * 1_000_000  # shrink the post-recovery tail
    mod.RATE_RPS = 15_000
    out = run_main(mod)
    # Both runs conserve every request across the crash.
    assert out.count("conserved=True") == 2
    assert out.count("invariant violations=0") == 2
    assert "replayed=0" not in out
    replicated, single = out.split("single replica")
    # Failover hides the outage entirely; the single replica cannot.
    assert "MISS" not in replicated
    assert "MISS" in single
    # ...and the final loaded window after reconnect recovered.
    windows = [l for l in single.splitlines() if "p99=" in l and "ms  " in l]
    assert windows and "ok" in windows[-1]
