"""Unit tests for regions, page tables, and diff-run computation."""

import numpy as np
import pytest

from repro.dsm import PAGE_SIZE, HomePolicy, PageState, PageTable, SharedRegion
from repro.dsm.runtime import _diff_runs


def make_region(size=8 * PAGE_SIZE, nodes=4, policy="block"):
    n_pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
    home_of = (
        HomePolicy.block(n_pages, nodes)
        if policy == "block"
        else HomePolicy.round_robin(n_pages, nodes)
    )
    return SharedRegion(
        region_id=1,
        name="r",
        size=size,
        n_pages=n_pages,
        home_of=home_of,
        base=[0x1000_0000 * (i + 1) for i in range(nodes)],
    )


class TestHomePolicy:
    def test_block_contiguous(self):
        home = HomePolicy.block(8, 4)
        assert [home(p) for p in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_uneven(self):
        home = HomePolicy.block(10, 4)
        assert max(home(p) for p in range(10)) == 3

    def test_round_robin(self):
        home = HomePolicy.round_robin(6, 3)
        assert [home(p) for p in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_fixed(self):
        home = HomePolicy.fixed(2)
        assert all(home(p) == 2 for p in range(10))


class TestSharedRegion:
    def test_page_range_single(self):
        r = make_region()
        assert list(r.page_range(0, 1)) == [0]
        assert list(r.page_range(PAGE_SIZE - 1, 1)) == [0]

    def test_page_range_spanning(self):
        r = make_region()
        assert list(r.page_range(PAGE_SIZE - 1, 2)) == [0, 1]
        assert list(r.page_range(0, 3 * PAGE_SIZE)) == [0, 1, 2]

    def test_page_range_out_of_bounds(self):
        r = make_region()
        with pytest.raises(ValueError):
            r.page_range(0, r.size + 1)
        with pytest.raises(ValueError):
            r.page_range(-1, 10)
        with pytest.raises(ValueError):
            r.page_range(0, 0)

    def test_page_addr(self):
        r = make_region()
        assert r.page_addr(1, 3) == r.base[1] + 3 * PAGE_SIZE


class TestPageTable:
    def test_home_pages_start_valid(self):
        r = make_region(nodes=4)
        pt = PageTable(r, node_id=0)
        assert pt.state[0] == PageState.VALID  # home
        assert pt.state[7] == PageState.INVALID  # homed at node 3

    def test_invalidate_skips_home(self):
        r = make_region(nodes=4)
        pt = PageTable(r, node_id=0)
        pt.invalidate(0)
        assert pt.state[0] == PageState.VALID

    def test_invalidate_non_home(self):
        r = make_region(nodes=4)
        pt = PageTable(r, node_id=0)
        pt.state[7] = PageState.VALID
        pt.invalidate(7)
        assert pt.state[7] == PageState.INVALID

    def test_invalidate_skips_dirty(self):
        r = make_region(nodes=4)
        pt = PageTable(r, node_id=0)
        pt.state[7] = PageState.DIRTY
        pt.invalidate(7)
        assert pt.state[7] == PageState.DIRTY


class TestDiffRuns:
    def page(self):
        return np.zeros(PAGE_SIZE, dtype=np.uint8)

    def test_no_change(self):
        a = self.page()
        assert _diff_runs(a, a.copy()) == []

    def test_single_byte(self):
        twin, cur = self.page(), self.page()
        cur[100] = 1
        assert _diff_runs(twin, cur) == [(100, 1)]

    def test_contiguous_run(self):
        twin, cur = self.page(), self.page()
        cur[10:20] = 7
        assert _diff_runs(twin, cur) == [(10, 10)]

    def test_two_distant_runs(self):
        twin, cur = self.page(), self.page()
        cur[0:4] = 1
        cur[1000:1008] = 2
        assert _diff_runs(twin, cur) == [(0, 4), (1000, 8)]

    def test_nearby_runs_stay_exact(self):
        """Gap bytes must never be covered: writing them back would clobber
        a concurrent false-sharing writer's bytes at the home."""
        twin, cur = self.page(), self.page()
        cur[100] = 1
        cur[110] = 1
        assert _diff_runs(twin, cur) == [(100, 1), (110, 1)]

    def test_fully_changed_page_is_one_run(self):
        twin, cur = self.page(), self.page()
        cur[:] = 9
        assert _diff_runs(twin, cur) == [(0, PAGE_SIZE)]

    def test_runs_never_include_unchanged_bytes(self):
        rng = np.random.default_rng(3)
        twin = rng.integers(0, 255, PAGE_SIZE, dtype=np.uint8)
        cur = twin.copy()
        flips = rng.choice(PAGE_SIZE, 200, replace=False)
        cur[flips] = (cur[flips].astype(np.int64) + 1) % 256
        covered = np.zeros(PAGE_SIZE, dtype=bool)
        for start, length in _diff_runs(twin, cur):
            covered[start : start + length] = True
        assert np.array_equal(covered, twin != cur)

    def test_runs_cover_all_changes(self):
        rng = np.random.default_rng(0)
        twin = rng.integers(0, 255, PAGE_SIZE, dtype=np.uint8)
        cur = twin.copy()
        flips = rng.choice(PAGE_SIZE, 50, replace=False)
        cur[flips] = (cur[flips].astype(np.int64) + 1) % 256
        runs = _diff_runs(twin, cur)
        rebuilt = twin.copy()
        for start, length in runs:
            rebuilt[start : start + length] = cur[start : start + length]
        assert np.array_equal(rebuilt, cur)
