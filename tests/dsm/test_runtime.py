"""Integration tests for the DSM runtime over the simulated cluster."""

import numpy as np
import pytest

from repro.bench.cluster import make_cluster
from repro.dsm import PAGE_SIZE, DsmRuntime, PageState


def make_runtime(nodes=4, config="1L-1G", **kw):
    cluster = make_cluster(config, nodes=nodes, **kw)
    return DsmRuntime(cluster)


class TestBarriers:
    def test_barrier_synchronizes_all_nodes(self):
        rt = make_runtime(4)
        after = []

        def program(node):
            yield from node.compute(1000 * (node.rank + 1))
            yield from node.barrier(0)
            after.append((node.rank, node.sim.now))

        rt.run(program)
        times = [t for _, t in after]
        # All nodes leave the barrier within a small window (message skew).
        assert max(times) - min(times) < 300_000

    def test_sequential_barriers(self):
        rt = make_runtime(3)

        def program(node):
            for i in range(5):
                yield from node.barrier(0)
            return node.stats.barriers

        result = rt.run(program)
        assert result.returns == [5, 5, 5]

    def test_single_node_barrier_is_local(self):
        rt = make_runtime(1)

        def program(node):
            yield from node.barrier(0)
            yield from node.barrier(0)

        result = rt.run(program)
        assert result.network.data_frames_sent == 0


class TestSharedData:
    def test_write_then_read_across_nodes(self):
        rt = make_runtime(2)
        region = rt.alloc_region("data", 4 * PAGE_SIZE, home="fixed:0")

        def program(node):
            if node.rank == 0:
                view = yield from node.access(region, 0, 16, mode="rw")
                view[:16] = np.frombuffer(b"hello, dsm world", dtype=np.uint8)
            yield from node.barrier(0)
            if node.rank == 1:
                view = yield from node.access(region, 0, 16, mode="r")
                return bytes(view[:16])

        result = rt.run(program)
        assert result.returns[1] == b"hello, dsm world"

    def test_remote_write_invalidates_cached_copy(self):
        rt = make_runtime(2)
        region = rt.alloc_region("data", PAGE_SIZE, home="fixed:0")

        def program(node):
            values = []
            # Both nodes read initial page.
            view = yield from node.access(region, 0, 8, mode="r")
            values.append(int(view[0]))
            yield from node.barrier(0)
            if node.rank == 0:
                w = yield from node.access(region, 0, 8, mode="rw")
                w[0] = 42
            yield from node.barrier(0)
            view = yield from node.access(region, 0, 8, mode="r")
            values.append(int(view[0]))
            return values

        result = rt.run(program)
        assert result.returns[0] == [0, 42]
        assert result.returns[1] == [0, 42]
        # Node 1 must have invalidated and refetched.
        assert rt.nodes[1].stats.invalidations_applied >= 1
        assert rt.nodes[1].stats.page_fetches >= 2

    def test_diff_merge_false_sharing(self):
        """Two nodes write disjoint halves of the same page; both survive."""
        rt = make_runtime(3)
        region = rt.alloc_region("page", PAGE_SIZE, home="fixed:2")

        def program(node):
            if node.rank == 0:
                v = yield from node.access(region, 0, 8, mode="rw")
                v[:8] = 1
            elif node.rank == 1:
                v = yield from node.access(region, 2048, 8, mode="rw")
                v[:8] = 2
            yield from node.barrier(0)
            v = yield from node.access(region, 0, PAGE_SIZE, mode="r")
            return (int(v[0]), int(v[2048]))

        result = rt.run(program)
        assert result.returns == [(1, 2), (1, 2), (1, 2)]

    def test_block_home_gives_local_pages(self):
        rt = make_runtime(4)
        region = rt.alloc_region("blocked", 8 * PAGE_SIZE, home="block")

        def program(node):
            # Access own block: no fetches needed.
            own_offset = node.rank * 2 * PAGE_SIZE
            yield from node.access(region, own_offset, 2 * PAGE_SIZE, mode="rw")
            return node.stats.page_fetches

        result = rt.run(program)
        assert result.returns == [0, 0, 0, 0]

    def test_multi_page_fetch(self):
        rt = make_runtime(2)
        region = rt.alloc_region("big", 6 * PAGE_SIZE, home="fixed:0")

        def program(node):
            if node.rank == 1:
                yield from node.access(region, 0, 6 * PAGE_SIZE, mode="r")
                return node.stats.page_fetches

        result = rt.run(program)
        assert result.returns[1] == 6


class TestLocks:
    def test_mutual_exclusion_counter(self):
        rt = make_runtime(4)
        region = rt.alloc_region("counter", PAGE_SIZE, home="fixed:0")
        increments = 5

        def program(node):
            for _ in range(increments):
                yield from node.lock(7)
                view = yield from node.access(region, 0, 8, mode="rw")
                arr = view.view(np.int64)
                old = int(arr[0])
                yield from node.compute(500)
                arr[0] = old + 1
                yield from node.unlock(7)
            yield from node.barrier(0)
            view = yield from node.access(region, 0, 8, mode="r")
            return int(view.view(np.int64)[0])

        result = rt.run(program)
        assert result.returns == [4 * increments] * 4

    def test_lock_manager_on_other_node(self):
        rt = make_runtime(3)
        # lock 1 managed by node 1; nodes 0 and 2 contend.
        order = []

        def program(node):
            if node.rank != 1:
                yield from node.lock(1)
                order.append(node.rank)
                yield from node.compute(10_000)
                yield from node.unlock(1)
            yield from node.barrier(0)

        rt.run(program)
        assert sorted(order) == [0, 2]

    def test_lock_stats(self):
        rt = make_runtime(2)

        def program(node):
            yield from node.lock(0)
            yield from node.unlock(0)
            yield from node.barrier(0)

        rt.run(program)
        assert rt.nodes[0].stats.lock_acquires == 1
        assert rt.nodes[1].stats.lock_acquires == 1


class TestMeasurement:
    def test_start_measurement_resets_counters(self):
        rt = make_runtime(2)
        region = rt.alloc_region("d", 4 * PAGE_SIZE, home="fixed:0")

        def program(node):
            # Init phase: generate traffic.
            if node.rank == 1:
                yield from node.access(region, 0, 4 * PAGE_SIZE, mode="r")
            yield from node.barrier(0)
            node.start_measurement()
            yield from node.compute(50_000)
            yield from node.barrier(0)

        result = rt.run(program)
        assert result.elapsed_ns > 0
        # Fetches from the init phase are excluded from measured stats.
        assert rt.nodes[1].stats.page_fetches == 0

    def test_breakdown_fractions_sane(self):
        rt = make_runtime(2)
        region = rt.alloc_region("d", 16 * PAGE_SIZE, home="fixed:0")

        def program(node):
            node.start_measurement()
            yield from node.compute(200_000)
            if node.rank == 1:
                yield from node.access(region, 0, 16 * PAGE_SIZE, mode="r")
            yield from node.barrier(0)

        result = rt.run(program)
        for b in result.breakdowns:
            assert 0.0 <= b.compute <= 1.0
            assert 0.0 <= b.data_wait <= 1.0
            assert 0.0 <= b.sync <= 1.0
        # Node 1 waited on data.
        assert result.breakdowns[1].data_wait > 0.0


class TestChunkedNotices:
    def test_many_dirty_pages_cross_barrier(self):
        """Write-notice list exceeding one staging chunk still works."""
        n_pages = 1500  # > NOTICES_PER_CHUNK (1024)
        rt = make_runtime(2)
        region = rt.alloc_region("wide", n_pages * PAGE_SIZE, home="fixed:1")

        def program(node):
            if node.rank == 0:
                for p in range(0, n_pages, 8):
                    v = yield from node.access(
                        region, p * PAGE_SIZE, 8, mode="rw"
                    )
                    v[:] = 5
            yield from node.barrier(0)
            if node.rank == 1:
                v = yield from node.access(region, 0, 8, mode="r")
                return int(v[0])

        result = rt.run(program, limit_ms=60_000)
        assert result.returns[1] == 5
