"""DSM robustness: credit recycling, fences on unordered rails, faults."""

import numpy as np
import pytest

from repro.bench.cluster import make_cluster
from repro.dsm import PAGE_SIZE, DsmRuntime
from repro.dsm.runtime import INBOX_SLOTS
from repro.ethernet import LinkParams


def make_runtime(nodes=4, config="1L-1G", **kw):
    return DsmRuntime(make_cluster(config, nodes=nodes, **kw))


def test_mailbox_credit_recycling():
    """Far more messages per pair than inbox slots: credits must recycle."""
    rt = make_runtime(2)
    rounds = INBOX_SLOTS * 4

    def program(node):
        for r in range(rounds):
            yield from node.barrier(0)
        return node.stats.barriers

    result = rt.run(program)
    assert result.returns == [rounds, rounds]


def test_locks_on_unordered_rails():
    """Mutual exclusion must hold when data frames reorder freely (2Lu)."""
    rt = make_runtime(4, config="2Lu-1G")
    region = rt.alloc_region("ctr", PAGE_SIZE, home="fixed:0")
    rounds = 6

    def program(node):
        for _ in range(rounds):
            yield from node.lock(3)
            view = yield from node.access(region, 0, 8, "rw")
            arr = view.view(np.int64)
            old = int(arr[0])
            yield from node.compute(2_000)
            arr[0] = old + 1
            yield from node.unlock(3)
        yield from node.barrier(0)
        view = yield from node.access(region, 0, 8, "r")
        return int(view.view(np.int64)[0])

    result = rt.run(program)
    assert result.returns == [4 * rounds] * 4


def test_dsm_survives_bit_errors():
    rt = make_runtime(
        3, link=LinkParams(speed_bps=1e9, bit_error_rate=1e-7)
    )
    region = rt.alloc_region("d", 32 * PAGE_SIZE, home="block")

    def program(node):
        # Each node writes a stripe, everyone checks everyone's stripe.
        off = node.rank * 8 * PAGE_SIZE
        view = yield from node.access(region, off, 8 * PAGE_SIZE, "rw")
        view[:] = node.rank + 1
        yield from node.barrier(0)
        ok = True
        for peer in range(node.size):
            v = yield from node.access(
                region, peer * 8 * PAGE_SIZE, 8 * PAGE_SIZE, "r"
            )
            ok = ok and bool((v == peer + 1).all())
        return ok

    result = rt.run(program, limit_ms=120_000)
    assert all(result.returns)


def test_region_api_validation():
    rt = make_runtime(2)
    with pytest.raises(ValueError):
        rt.alloc_region("bad", 0)
    with pytest.raises(ValueError):
        rt.alloc_region("bad", 4096, home="nonsense")
    region = rt.alloc_region("ok", 4096)

    def program(node):
        with pytest.raises(ValueError):
            yield from node.access(region, 0, 8, "badmode")
        yield 0

    rt.run(program)


def test_run_result_interrupt_fraction():
    rt = make_runtime(2)
    region = rt.alloc_region("d", 16 * PAGE_SIZE, home="fixed:0")

    def program(node):
        node.start_measurement()
        if node.rank == 1:
            yield from node.access(region, 0, 16 * PAGE_SIZE, "r")
        yield from node.barrier(0)

    result = rt.run(program)
    assert result.interrupt_fraction > 0


def test_dsm_on_10g_cluster():
    rt = make_runtime(4, config="1L-10G")
    region = rt.alloc_region("d", 8 * PAGE_SIZE, home="block")

    def program(node):
        view = yield from node.access(
            region, node.rank * 2 * PAGE_SIZE, PAGE_SIZE, "rw"
        )
        view[:4] = node.rank + 10
        yield from node.barrier(0)
        total = 0
        for peer in range(node.size):
            v = yield from node.access(
                region, peer * 2 * PAGE_SIZE, 4, "r"
            )
            total += int(v[0])
        return total

    result = rt.run(program)
    assert result.returns == [sum(range(10, 14))] * 4
