"""Unit tests for DSM message encoding and sync state machines."""

import pytest

from repro.dsm import (
    BarrierManagerState,
    LockManagerState,
    Message,
    MsgType,
    decode_notices,
    encode_notices,
)
from repro.dsm.messages import MSG_SLOT_BYTES


def test_message_roundtrip():
    m = Message(MsgType.LOCK_GRANT, src=3, a=17, b=5, c=99, d=1)
    out = Message.decode(m.encode())
    assert out == m


def test_message_is_slot_sized():
    assert len(Message(MsgType.CREDIT, 0).encode()) == MSG_SLOT_BYTES


def test_all_message_types_roundtrip():
    for t in MsgType:
        assert Message.decode(Message(t, 1).encode()).msg_type == t


def test_notices_roundtrip():
    notices = [(1, 5), (2, 100), (1, 0)]
    blob = encode_notices(notices)
    assert len(blob) == 24
    assert decode_notices(blob, 3) == notices


def test_notices_empty():
    assert encode_notices([]) == b""
    assert decode_notices(b"", 0) == []


class TestLockManager:
    def test_grant_when_free(self):
        s = LockManagerState(0)
        assert s.request(2) == 2
        assert s.holder == 2

    def test_queue_when_held(self):
        s = LockManagerState(0)
        s.request(1)
        assert s.request(2) is None
        assert s.request(3) is None
        assert list(s.waiting) == [2, 3]

    def test_release_grants_fifo(self):
        s = LockManagerState(0)
        s.request(1)
        s.request(2)
        s.request(3)
        assert s.release(1, [], 4) == 2
        assert s.release(2, [], 4) == 3
        assert s.release(3, [], 4) is None
        assert s.holder is None

    def test_release_by_non_holder_raises(self):
        s = LockManagerState(0)
        s.request(1)
        with pytest.raises(RuntimeError):
            s.release(2, [], 4)

    def test_notices_propagate_to_others_not_writer(self):
        s = LockManagerState(0)
        s.request(1)
        s.release(1, [(1, 7)], 3)
        assert s.take_pending(0) == [(1, 7)]
        assert s.take_pending(2) == [(1, 7)]
        assert s.take_pending(1) == []

    def test_pending_accumulates_and_clears(self):
        s = LockManagerState(0)
        s.request(1)
        s.release(1, [(1, 7)], 3)
        s.request(1)
        s.release(1, [(1, 8)], 3)
        assert s.take_pending(2) == [(1, 7), (1, 8)]
        assert s.take_pending(2) == []

    def test_partial_chunks_merge(self):
        s = LockManagerState(0)
        s.request(1)
        s.add_partial([(1, 1)])
        s.add_partial([(1, 2)])
        s.release(1, [(1, 3)], 2)
        assert s.take_pending(0) == [(1, 1), (1, 2), (1, 3)]


class TestBarrierManager:
    def test_waits_for_all(self):
        s = BarrierManagerState(0)
        assert s.arrive(0, [], 3) is None
        assert s.arrive(1, [], 3) is None
        releases = s.arrive(2, [], 3)
        assert set(releases) == {0, 1, 2}
        assert s.epoch == 1

    def test_notices_exclude_own(self):
        s = BarrierManagerState(0)
        s.arrive(0, [(1, 10)], 2)
        releases = s.arrive(1, [(1, 20)], 2)
        assert releases[0] == [(1, 20)]
        assert releases[1] == [(1, 10)]

    def test_double_arrival_raises(self):
        s = BarrierManagerState(0)
        s.arrive(0, [], 3)
        with pytest.raises(RuntimeError):
            s.arrive(0, [], 3)

    def test_reusable_across_epochs(self):
        s = BarrierManagerState(0)
        for epoch in range(3):
            for node in range(2):
                res = s.arrive(node, [], 2)
            assert res is not None
            assert s.epoch == epoch + 1

    def test_partial_chunks(self):
        s = BarrierManagerState(0)
        s.add_partial(0, [(1, 1)])
        s.arrive(0, [(1, 2)], 2)
        releases = s.arrive(1, [], 2)
        assert releases[1] == [(1, 1), (1, 2)]
