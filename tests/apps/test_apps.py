"""Application correctness tests (small problem sizes, few nodes)."""

import numpy as np
import pytest

from repro.apps import (
    APP_CLASSES,
    BarnesApp,
    FftApp,
    LuApp,
    RadixApp,
    RaytraceApp,
    WaterNsqApp,
    WaterSpatialApp,
    WaterSpatialFlApp,
    run_app,
)

SMALL = {
    "barnes": dict(n_particles=256, iterations=1, grid=4),
    "fft": dict(m=32),
    "lu": dict(n=64, block=16),
    "radix": dict(n_keys=1 << 12),
    "raytrace": dict(image=32, tile=16, n_spheres=8),
    "water-nsq": dict(n_molecules=128, iterations=1),
    "water-spatial": dict(n_molecules=256, iterations=1, grid=4),
    "water-spatial-fl": dict(n_molecules=256, iterations=1, grid=4),
}


@pytest.mark.parametrize("name", sorted(APP_CLASSES))
def test_app_verifies_on_two_nodes(name):
    result = run_app(APP_CLASSES[name](**SMALL[name]), nodes=2)
    assert result.verified, name
    assert result.elapsed_ns > 0


@pytest.mark.parametrize("name", sorted(APP_CLASSES))
def test_app_verifies_on_four_nodes(name):
    result = run_app(APP_CLASSES[name](**SMALL[name]), nodes=4)
    assert result.verified, name


@pytest.mark.parametrize("name", ["fft", "radix", "lu"])
def test_numeric_apps_on_single_node(name):
    result = run_app(APP_CLASSES[name](**SMALL[name]), nodes=1)
    assert result.verified, name


def test_fft_matches_numpy_exactly_per_node_counts():
    for nodes in (1, 2, 4):
        result = run_app(FftApp(m=32), nodes=nodes)
        assert result.verified, f"{nodes} nodes"


def test_fft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        FftApp(m=100)


def test_radix_sorts_adversarial_keys():
    app = RadixApp(n_keys=1 << 12, seed=99)
    result = run_app(app, nodes=4)
    assert result.verified


def test_radix_rejects_bad_key_bits():
    with pytest.raises(ValueError):
        RadixApp(key_bits=12)


def test_lu_factorization_reconstructs():
    result = run_app(LuApp(n=64, block=16), nodes=4)
    assert result.verified


def test_lu_rejects_mismatched_block():
    with pytest.raises(ValueError):
        LuApp(n=100, block=32)


def test_raytrace_image_matches_sequential_render():
    result = run_app(RaytraceApp(image=32, tile=16, n_spheres=8), nodes=2)
    assert result.verified


def test_raytrace_rejects_bad_tile():
    with pytest.raises(ValueError):
        RaytraceApp(image=100, tile=32)


def test_app_runs_are_deterministic():
    a = run_app(FftApp(m=32), nodes=4, seed=7)
    b = run_app(FftApp(m=32), nodes=4, seed=7)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.dsm.network.data_frames_sent == b.dsm.network.data_frames_sent


def test_different_seed_changes_timing_noise():
    a = run_app(FftApp(m=32), nodes=4, seed=1)
    b = run_app(FftApp(m=32), nodes=4, seed=2)
    # Same workload, different link jitter: timing differs slightly.
    assert a.elapsed_ns != b.elapsed_ns


def test_speedup_computation():
    r1 = run_app(WaterNsqApp(n_molecules=256, iterations=1), nodes=1)
    r4 = run_app(WaterNsqApp(n_molecules=256, iterations=1), nodes=4)
    s = r4.speedup_vs(r1)
    assert 0.1 < s < 4.5


def test_breakdown_fractions_roughly_sum_to_one():
    result = run_app(BarnesApp(**SMALL["barnes"]), nodes=4)
    b = result.mean_breakdown
    total = b.compute + b.data_wait + b.sync + b.dsm_overhead + b.other
    assert total == pytest.approx(1.0, abs=0.01)


def test_apps_generate_network_traffic_on_multiple_nodes():
    result = run_app(FftApp(m=32), nodes=4)
    assert result.dsm.network.data_frames_sent > 0
    assert result.dsm.network.data_bytes_sent > 0


def test_workload_registry_covers_all_apps():
    from repro.apps import SCALED, TABLE1

    assert len(TABLE1) == 8
    assert {w.app for w in SCALED} == set(APP_CLASSES)
