"""Per-rail counters and edge lifecycle history in the cluster summary."""

from repro.analysis import EdgeScoreProbe, RailCounters, summarize_cluster
from repro.bench import make_cluster
from repro.control import FaultSchedule, PermanentFailure, Repair

MS = 1_000_000


def run_transfer(cluster, size=1_000_000):
    a, b = cluster.connect(0, 1)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 251 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=1_000 * MS)
    assert b.node.memory.read(dst, size) == payload
    return a, b


def test_per_rail_counters_sum_to_totals():
    cluster = make_cluster("2Lu-1G", nodes=2)
    run_transfer(cluster)
    summary = summarize_cluster(cluster)
    assert len(summary.rails) == 2
    assert all(isinstance(r, RailCounters) for r in summary.rails)
    assert sum(r.tx_frames for r in summary.rails) == summary.wire_frames
    assert sum(r.tx_bytes for r in summary.rails) == summary.wire_bytes
    assert sum(r.irqs for r in summary.rails) == summary.irqs
    # Both rails actually carried traffic.
    assert all(r.tx_frames > 0 for r in summary.rails)


def test_edge_history_in_summary():
    cluster = make_cluster("2Lu-1G", nodes=2)
    cluster.enable_edge_control(0, 1)
    FaultSchedule([
        PermanentFailure(at_ns=5 * MS, node=0, rail=0),
        Repair(at_ns=30 * MS, node=0, rail=0),
    ]).apply(cluster)
    cluster.sim.run(until=40 * MS)
    summary = summarize_cluster(cluster)
    assert summary.edges_failed == 2  # one DOWN per endpoint
    assert summary.edges_recovered == 2
    assert summary.edge_history
    times = [t.time_ns for t in summary.edge_history]
    assert times == sorted(times)


def test_no_control_plane_yields_empty_history():
    cluster = make_cluster("2Lu-1G", nodes=2)
    run_transfer(cluster, size=100_000)
    summary = summarize_cluster(cluster)
    assert summary.edge_history == []
    assert summary.edges_failed == 0
    assert summary.frames_migrated == 0


def test_edge_score_probe_tracks_failure():
    cluster = make_cluster("2Lu-1G", nodes=2)
    ma, _mb = cluster.enable_edge_control(0, 1)
    probe = EdgeScoreProbe(cluster.sim, ma, 0)
    FaultSchedule([PermanentFailure(at_ns=10 * MS, node=0, rail=0)]).apply(cluster)
    cluster.sim.run(until=30 * MS)
    probe.stop()
    # Healthy at first, collapsing after the kill.
    assert probe.values[0] > 0.9
    assert min(probe.values) < 0.1
