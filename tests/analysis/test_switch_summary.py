"""Per-switch summary counters: fabric names, tiers, and shape stability."""

from repro.analysis import SwitchCounters, summarize_cluster
from repro.bench import make_cluster
from repro.bench.micro import run_one_way
from repro.fabric import LeafSpineSpec, Permutation, run_traffic


class TestClassicClusters:
    def test_single_switch_appears_once(self):
        cluster = make_cluster("1L-1G", nodes=2)
        run_one_way(cluster, 65536, iterations=4)
        s = summarize_cluster(cluster)
        assert len(s.switches) == 1
        sw = s.switches[0]
        assert isinstance(sw, SwitchCounters)
        assert sw.tier == ""  # classic wiring has no tiers
        assert sw.forwarded > 0
        assert sw.ecmp_routed == 0 and sw.repins == 0

    def test_old_summary_shape_is_stable(self):
        """Pre-existing aggregate fields keep their meaning: the new
        per-switch list refines them, it does not replace them."""
        cluster = make_cluster("1L-1G", nodes=2)
        run_one_way(cluster, 65536, iterations=4)
        s = summarize_cluster(cluster)
        assert s.switch_drops == sum(sw.dropped_total for sw in s.switches)
        assert s.data_frames > 0 and s.goodput_mbps > 0

    def test_two_rails_two_switches(self):
        cluster = make_cluster("2L-1G", nodes=2)
        run_one_way(cluster, 65536, iterations=4)
        s = summarize_cluster(cluster)
        assert len(s.switches) == 2


class TestFabricClusters:
    def _summary(self):
        cluster = make_cluster(
            "1L-1G", nodes=4, seed=0, synthetic_payloads=False,
            fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2),
        )
        run_traffic(cluster, Permutation(8192, rounds=2), seed=0)
        return summarize_cluster(cluster)

    def test_every_fabric_switch_keyed_by_name(self):
        s = self._summary()
        by_name = {sw.name: sw for sw in s.switches}
        assert set(by_name) == {
            "leaf0.0", "leaf0.1", "spine0.0", "spine0.1"
        }
        assert by_name["leaf0.0"].tier == "leaf"
        assert by_name["spine0.1"].tier == "spine"

    def test_ecmp_counters_surface(self):
        s = self._summary()
        leaves = [sw for sw in s.switches if sw.tier == "leaf"]
        assert sum(sw.ecmp_routed for sw in leaves) > 0
        assert all(sw.forwarded > 0 for sw in s.switches if sw.tier == "leaf")

    def test_tier_drops_rollup(self):
        s = self._summary()
        td = s.tier_drops
        assert set(td) == {"leaf", "spine"}
        assert sum(td.values()) == s.switch_drops

    def test_tx_bytes_tracks_egress_links(self):
        s = self._summary()
        assert all(sw.tx_bytes > 0 for sw in s.switches)
