"""Latency accounting under hedging: losers vanish, winners are credited.

A hedged request has two attempts in flight but is still *one* request:
exactly one response may produce a latency sample, and it must land in
the histogram of the server that actually answered first.  If the
losing response were recorded too, every hedge would double-count and
the merged tail would lie about the load the cluster served.
"""

from repro.analysis.latency import LatencyHistogram
from repro.bench.serve import ServeRun
from repro.control import SlowNode
from repro.serve import ArrivalSpec, ServerSpec, TailSpec

MS = 1_000_000


def _hedged_run():
    run = ServeRun(
        config="1L-10G",
        n_clients=2,
        n_servers=8,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=30_000,
                            request_bytes=("fixed", 128),
                            response_bytes=("fixed", 512), batch=128),
        server=ServerSpec(queue_cap=64, workers=4, service=("exp", 40_000)),
        duration_ns=12 * MS,
        seed=11,
        faults=[SlowNode(at_ns=2 * MS, node=2, duration_ns=9 * MS,
                         factor=10.0)],
        tail=TailSpec(),
    )
    res = run.finish()
    return run, res


def test_hedge_losers_record_no_sample():
    run, res = _hedged_run()
    assert not res.violations, res.violations
    rt = run.runtime
    # The run actually hedged, and some losers came home late.
    assert rt.tail.hedges_won > 0
    assert rt.duplicate_responses > 0
    # One sample per completed request — no double counting anywhere.
    assert rt.merged_histogram().total == rt.completed
    assert sum(h.total for h in rt.hist_by_server.values()) == rt.completed
    for name in ("hist_queueing", "hist_service", "hist_network"):
        assert getattr(rt, name).total == rt.completed, name


def test_hedge_wins_credited_to_the_winner():
    run, _ = _hedged_run()
    rt = run.runtime
    slow = 2  # the SlowNode target
    others = [s for s in rt.hist_by_server if s != slow]
    fair_share = rt.completed / len(rt.hist_by_server)
    # Wins land in the winning (fast) servers' histograms, so the gray
    # replica holds well under a fair share of the credited samples...
    assert rt.hist_by_server[slow].total < 0.5 * fair_share
    # ...while the books still balance across the pool.
    assert rt.hist_by_server[slow].total + sum(
        rt.hist_by_server[s].total for s in others
    ) == rt.completed


def test_merged_histogram_is_associative_and_commutative():
    parts = []
    for base in (100, 10_000, 1_000_000):
        h = LatencyHistogram()
        for i in range(50):
            h.record(base + i * base // 10)
        parts.append(h)
    a, b, c = parts
    left = LatencyHistogram.merged(
        [LatencyHistogram.merged([a, b]), c]
    )
    right = LatencyHistogram.merged(
        [a, LatencyHistogram.merged([b, c])]
    )
    shuffled = LatencyHistogram.merged([c, a, b])
    assert left == right == shuffled
    assert left.total == sum(p.total for p in parts)
    assert left.p99 == shuffled.p99
    # Merging never mutates percentile semantics: the merged p50 sits
    # inside the span of the parts' extremes.
    assert min(p.min_value for p in parts) <= left.p50
    assert left.p50 <= max(p.max_value for p in parts)
