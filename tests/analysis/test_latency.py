"""Latency histogram: exactness, bucket geometry, merging, SLOs.

The HDR-style histogram is the measurement primitive every serving
number flows through, so its error bound is load-bearing: percentiles
must match a sorted-list oracle exactly below the linear region and to
within half a sub-bucket (1/256 relative) above it, and merging
per-node histograms must be associative so cluster-wide tails are
independent of merge order.
"""

import random

import pytest

from repro.analysis import LatencyHistogram, SloSpec
from repro.analysis.latency import _bucket_bounds, _index_of


def _oracle(values, pct):
    """Nearest-rank percentile over the raw sample list."""
    ordered = sorted(values)
    rank = max(1, -(-int(pct * len(ordered)) // 100))
    return ordered[rank - 1]


# ---------------------------------------------------------------------------
# Bucket geometry
# ---------------------------------------------------------------------------


def test_small_values_are_exact():
    h = LatencyHistogram()
    for v in range(256):
        h.record(v)
    assert h.total == 256
    # Every value below 2*128 owns its own bucket.
    assert len(h.counts) == 256
    for v in (0, 1, 127, 128, 255):
        assert _bucket_bounds(_index_of(v)) == (v, v)


def test_bucket_bounds_are_a_partition():
    """Buckets tile the integers: contiguous, non-overlapping, and every
    value falls inside the bucket its index maps to."""
    prev_hi = -1
    for idx in range(_index_of(1 << 22) + 1):
        lo, hi = _bucket_bounds(idx)
        assert lo == prev_hi + 1, f"gap or overlap at bucket {idx}"
        assert hi >= lo
        prev_hi = hi
    for v in [255, 256, 257, 511, 512, 1023, 1024, 65_535, 65_536, 10**9]:
        lo, hi = _bucket_bounds(_index_of(v))
        assert lo <= v <= hi


def test_power_of_two_boundaries():
    """Exactly 128 sub-buckets per power-of-two region above 256."""
    for exp in (8, 9, 16, 30):
        lo_idx = _index_of(1 << exp)
        hi_idx = _index_of((1 << (exp + 1)) - 1)
        assert hi_idx - lo_idx + 1 == 128


def test_negative_value_rejected():
    h = LatencyHistogram()
    with pytest.raises(ValueError):
        h.record(-1)
    with pytest.raises(ValueError):
        h.record(5, count=0)


# ---------------------------------------------------------------------------
# Percentiles vs the sorted-list oracle
# ---------------------------------------------------------------------------


def test_percentile_exact_in_linear_region():
    rng = random.Random(1)
    values = [rng.randrange(0, 256) for _ in range(5_000)]
    h = LatencyHistogram()
    h.record_many(values)
    for pct in (1, 25, 50, 90, 99, 99.9, 100):
        assert h.percentile(pct) == _oracle(values, pct)


@pytest.mark.parametrize("dist", ["uniform", "lognormal", "bimodal"])
def test_percentile_error_bound_property(dist):
    """Quantization error stays within half a sub-bucket (1/256 relative)
    of the oracle for heavy-tailed, uniform, and bimodal samples."""
    rng = random.Random(hash(dist) & 0xFFFF)
    if dist == "uniform":
        values = [rng.randrange(1, 10**9) for _ in range(20_000)]
    elif dist == "lognormal":
        values = [int(rng.lognormvariate(12, 2)) + 1 for _ in range(20_000)]
    else:
        values = [
            rng.randrange(10_000, 20_000)
            if rng.random() < 0.9
            else rng.randrange(10**7, 10**8)
            for _ in range(20_000)
        ]
    h = LatencyHistogram()
    h.record_many(values)
    for pct in (10, 50, 90, 99, 99.9, 100):
        exact = _oracle(values, pct)
        approx = h.percentile(pct)
        assert abs(approx - exact) <= max(1, exact / 128), (
            f"{dist} p{pct}: histogram {approx} vs oracle {exact}"
        )


def test_percentile_empty_and_degenerate():
    h = LatencyHistogram()
    assert h.percentile(99) == 0
    assert h.mean == 0.0
    h.record(42)
    assert h.p50 == h.p99 == h.p999 == 42
    with pytest.raises(ValueError):
        h.percentile(0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_min_max_mean_track_exact_values():
    values = [3, 77, 10**6, 5_000_000_000]
    h = LatencyHistogram()
    h.record_many(values)
    assert h.min_value == 3
    assert h.max_value == 5_000_000_000
    assert h.mean == sum(values) / len(values)


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


def test_merge_equals_single_histogram():
    rng = random.Random(7)
    values = [int(rng.expovariate(1 / 50_000)) for _ in range(9_000)]
    whole = LatencyHistogram()
    whole.record_many(values)
    parts = [LatencyHistogram() for _ in range(4)]
    for i, v in enumerate(values):
        parts[i % 4].record(v)
    assert LatencyHistogram.merged(parts) == whole


def test_merge_is_associative_and_commutative():
    rng = random.Random(13)
    parts = []
    for _ in range(3):
        h = LatencyHistogram()
        h.record_many(int(rng.expovariate(1 / 80_000)) for _ in range(2_000))
        parts.append(h)
    a, b, c = parts

    def clone(h):
        return LatencyHistogram.merged([h])

    ab_c = clone(a).merge(clone(b)).merge(clone(c))
    a_bc = clone(a).merge(clone(b).merge(clone(c)))
    cba = clone(c).merge(clone(b)).merge(clone(a))
    assert ab_c == a_bc == cba


def test_merge_empty_is_identity():
    h = LatencyHistogram()
    h.record_many([5, 500, 50_000])
    before = LatencyHistogram.merged([h])
    h.merge(LatencyHistogram())
    assert h == before


def test_roundtrip_serialization():
    h = LatencyHistogram()
    h.record_many([0, 1, 255, 256, 10**7])
    assert LatencyHistogram.from_dict(h.to_dict()) == h


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------


def test_slo_clauses_and_attainment():
    h = LatencyHistogram()
    h.record_many([100_000] * 99 + [50_000_000])  # p99 well under 1 ms

    spec = SloSpec(p50_ms=1.0, p99_ms=1.0, max_shed_fraction=0.01)
    report = spec.evaluate(h, shed_fraction=0.0)
    assert report.attained
    assert report.clauses == {"p50": True, "p99": True, "shed": True}

    # The p999 catches the outlier; the shed clause catches overload.
    strict = SloSpec(p999_ms=1.0)
    assert not strict.evaluate(h).attained
    shed = SloSpec(p99_ms=1.0, max_shed_fraction=0.01)
    assert not shed.evaluate(h, shed_fraction=0.5).attained


def test_slo_unconfigured_clauses_are_omitted():
    h = LatencyHistogram()
    h.record(1_000)
    report = SloSpec(p99_ms=1.0).evaluate(h)
    assert set(report.clauses) == {"p99"}
    assert report.attained
    d = report.to_dict()
    assert d["attained"] is True and d["clauses"] == {"p99": True}
