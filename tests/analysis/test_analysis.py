"""Tests for probes and cluster summaries."""

import pytest

from repro.analysis import (
    InflightProbe,
    QueueProbe,
    ThroughputProbe,
    ascii_histogram,
    reorder_histogram,
    summarize_cluster,
)
from repro.bench import make_cluster
from repro.bench.micro import run_one_way


def streamed_cluster(config="1L-1G", size=262144):
    cluster = make_cluster(config, nodes=2)
    run_one_way(cluster, size, iterations=8)
    return cluster


class TestSummary:
    def test_summary_totals_consistent(self):
        cluster = streamed_cluster()
        s = summarize_cluster(cluster)
        assert s.data_frames > 0
        assert s.wire_frames >= s.data_frames  # wire includes acks etc.
        assert s.data_bytes <= s.wire_bytes
        assert 0 < s.wire_efficiency < 1
        assert s.goodput_mbps > 0
        assert s.retransmissions == 0
        assert s.switch_drops == 0

    def test_coalescing_factor(self):
        cluster = streamed_cluster()
        s = summarize_cluster(cluster)
        # Paper Fig 5: effective coalescing factor of about 3-10 for apps;
        # a smooth stream coalesces at least that well.
        assert s.interrupt_coalescing_factor >= 2

    def test_reorder_histogram_single_link_empty(self):
        cluster = streamed_cluster("1L-1G")
        assert sum(reorder_histogram(cluster)) == 0

    def test_reorder_histogram_two_rails_closely_spaced(self):
        cluster = streamed_cluster("2Lu-1G")
        hist = reorder_histogram(cluster)
        assert sum(hist) > 0
        # Paper: "frames arrive out-of-order but closely spaced" — the
        # mass must sit in the small-distance buckets.
        close = sum(hist[:4])
        assert close / sum(hist) > 0.8

    def test_protocol_cpu_fraction_positive(self):
        cluster = streamed_cluster()
        s = summarize_cluster(cluster)
        assert 0 < s.protocol_cpu_fraction_mean < 2


class TestProbes:
    def test_throughput_probe_sees_stream(self):
        cluster = make_cluster("1L-1G", nodes=2)
        a, b = cluster.connect(0, 1)
        probe = ThroughputProbe(cluster.sim, b.conn, interval_ns=500_000)
        run_one_way(cluster, 262144, iterations=8)
        probe.stop()
        assert probe.peak() > 80  # MB/s during the burst
        assert len(probe.samples) > 3

    def test_inflight_probe_bounded_by_window(self):
        cluster = make_cluster("1L-1G", nodes=2)
        a, b = cluster.connect(0, 1)
        probe = InflightProbe(cluster.sim, a.conn)
        run_one_way(cluster, 1048576, iterations=4)
        probe.stop()
        assert probe.peak() > 0
        assert probe.peak() <= a.conn.window.size

    def test_queue_probe_sees_congestion(self):
        from repro.ethernet import SwitchParams

        cluster = make_cluster(
            "1L-1G", nodes=3,
            switch=SwitchParams(ports=3, output_queue_frames=64),
        )
        probe = QueueProbe(cluster.sim, cluster.switches[0], interval_ns=50_000)
        size = 150_000
        procs = []
        for i in (0, 1):
            h, t = cluster.connect(i, 2)
            src = h.node.memory.alloc(size)
            dst = t.node.memory.alloc(size)

            def app(h=h, src=src, dst=dst):
                hd = yield from h.rdma_write(src, dst, size)
                yield from hd.wait()

            procs.append(cluster.sim.process(app()))
        for p in procs:
            cluster.sim.run_until_done(p, limit=60_000_000_000)
        probe.stop()
        assert probe.peak() > 5  # two 1G flows into one 1G port queue up

    def test_probe_interval_validation(self):
        cluster = make_cluster("1L-1G", nodes=2)
        a, _ = cluster.connect(0, 1)
        with pytest.raises(ValueError):
            ThroughputProbe(cluster.sim, a.conn, interval_ns=0)


def test_ascii_histogram_renders():
    text = ascii_histogram([5, 2, 0, 1])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "#" in lines[0]
    assert lines[2].endswith("0")
