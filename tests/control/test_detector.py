"""Unit tests for the per-edge failure-detector state machine."""

import pytest

from repro.control import DetectorParams, EdgeFailureDetector, EdgeState

MS = 1_000_000


def make(params=None, transitions=None):
    cb = None
    if transitions is not None:
        def cb(rail, old, new, now, reason):
            transitions.append((now, old, new, reason))
    return EdgeFailureDetector(0, params or DetectorParams(), on_transition=cb)


def test_starts_up():
    det = make()
    assert det.state is EdgeState.UP


def test_params_validation():
    with pytest.raises(ValueError):
        DetectorParams(probe_interval_ns=0)
    with pytest.raises(ValueError):
        DetectorParams(probe_timeout_ns=-1)
    with pytest.raises(ValueError):
        DetectorParams(suspect_after_losses=0)
    with pytest.raises(ValueError):
        DetectorParams(recovery_probes=0)


def test_detect_bound_formula():
    p = DetectorParams(
        probe_interval_ns=1 * MS,
        probe_timeout_ns=4 * MS,
        suspect_after_losses=3,
        confirm_window_ns=2 * MS,
    )
    assert p.detect_bound_ns == 3 * MS + 4 * MS + 2 * MS + 2 * MS


def test_single_loss_does_not_suspect():
    det = make()
    det.on_probe_loss(1 * MS, 0.9)
    assert det.state is EdgeState.UP


def test_consecutive_losses_suspect_then_confirm_down():
    log = []
    det = make(transitions=log)
    det.on_probe_loss(1 * MS, 0.9)
    det.on_probe_loss(2 * MS, 0.8)
    assert det.state is EdgeState.SUSPECT
    # Within the confirm window: still only suspect.
    det.on_probe_loss(2 * MS + 500_000, 0.6)
    assert det.state is EdgeState.SUSPECT
    det.on_probe_loss(3 * MS + 100_000, 0.5)
    assert det.state is EdgeState.DOWN
    assert [(old, new) for _, old, new, _ in log] == [
        (EdgeState.UP, EdgeState.SUSPECT),
        (EdgeState.SUSPECT, EdgeState.DOWN),
    ]


def test_success_resets_consecutive_losses():
    det = make()
    det.on_probe_loss(1 * MS, 0.9)
    det.on_probe_success(2 * MS, 0.95)
    det.on_probe_loss(3 * MS, 0.9)
    assert det.state is EdgeState.UP
    assert det.consecutive_losses == 1


def test_low_score_suspects_even_on_success():
    det = make()
    det.on_probe_success(1 * MS, 0.2)
    assert det.state is EdgeState.SUSPECT


def test_suspect_recovers_on_good_score():
    det = make()
    det.on_probe_loss(1 * MS, 0.9)
    det.on_probe_loss(2 * MS, 0.8)
    assert det.state is EdgeState.SUSPECT
    det.on_probe_success(3 * MS, 0.9)
    assert det.state is EdgeState.UP
    assert det.suspect_since is None


def test_full_lifecycle_up_down_recovering_up():
    params = DetectorParams(recovery_probes=2)
    det = make(params)
    det.on_probe_loss(1 * MS, 0.5)
    det.on_probe_loss(2 * MS, 0.3)
    det.on_probe_loss(4 * MS, 0.1)
    assert det.state is EdgeState.DOWN
    det.on_probe_success(10 * MS, 0.5)
    assert det.state is EdgeState.RECOVERING
    det.on_probe_success(11 * MS, 0.8)
    assert det.state is EdgeState.UP


def test_loss_during_recovery_goes_back_down():
    det = make(DetectorParams(recovery_probes=3))
    det.force_down(1 * MS)
    det.on_probe_success(2 * MS, 0.5)
    assert det.state is EdgeState.RECOVERING
    det.on_probe_loss(3 * MS, 0.4)
    assert det.state is EdgeState.DOWN


def test_recovery_probes_one_goes_straight_up():
    det = make(DetectorParams(recovery_probes=1))
    det.force_down(1 * MS)
    det.on_probe_success(2 * MS, 0.5)
    assert det.state is EdgeState.UP


def test_force_down_and_up_are_idempotent():
    log = []
    det = make(transitions=log)
    det.force_down(1 * MS)
    det.force_down(2 * MS)
    assert det.state is EdgeState.DOWN
    det.force_up(3 * MS)
    det.force_up(4 * MS)
    assert det.state is EdgeState.UP
    assert len(log) == 2


def test_transition_callback_payload():
    log = []
    det = make(transitions=log)
    det.force_down(7 * MS, "cable pulled")
    now, old, new, reason = log[0]
    assert now == 7 * MS
    assert old is EdgeState.UP and new is EdgeState.DOWN
    assert reason == "cable pulled"
