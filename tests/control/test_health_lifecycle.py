"""Health monitors + lifecycle manager against a live two-rail cluster."""

import pytest

from repro.bench import make_cluster
from repro.control import (
    AdaptiveStriping,
    DetectorParams,
    EdgeState,
    FaultSchedule,
    HealthParams,
    PermanentFailure,
    Repair,
)

MS = 1_000_000


def two_rail_cluster(**kwargs):
    cluster = make_cluster("2Lu-1G", nodes=2)
    a, b = cluster.connect(0, 1)
    ma, mb = cluster.enable_edge_control(0, 1, **kwargs)
    return cluster, a, b, ma, mb


def stream(cluster, a, b, size, limit_ns=400 * MS):
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 251 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=limit_ns)
    return b.node.memory.read(dst, size) == payload


def test_probes_flow_and_score_healthy():
    cluster, a, b, ma, mb = two_rail_cluster()
    cluster.sim.run(until=10 * MS)
    for mon in ma.monitors + mb.monitors:
        assert mon.probes_sent >= 15
        assert mon.probes_acked >= mon.probes_sent - 2
        assert mon.probes_lost == 0
        assert mon.score > 0.9
    assert ma.states == [EdgeState.UP, EdgeState.UP]
    assert a.stats.probes_sent > 0
    assert a.stats.probes_answered > 0


def test_health_params_validation():
    with pytest.raises(ValueError):
        HealthParams(alpha=0.0)
    with pytest.raises(ValueError):
        HealthParams(alpha=1.5)


def test_dead_rail_detected_and_masked():
    cluster, a, b, ma, mb = two_rail_cluster()
    FaultSchedule([PermanentFailure(at_ns=5 * MS, node=0, rail=0)]).apply(cluster)
    cluster.sim.run(until=5 * MS + ma.detector_params.detect_bound_ns)
    assert ma.edge_state(0) is EdgeState.DOWN
    assert mb.edge_state(0) is EdgeState.DOWN
    assert ma.edge_state(1) is EdgeState.UP
    assert a.conn.active_rails == [1]
    assert b.conn.active_rails == [1]


def test_repair_restores_both_rails():
    cluster, a, b, ma, mb = two_rail_cluster()
    FaultSchedule([
        PermanentFailure(at_ns=5 * MS, node=0, rail=0),
        Repair(at_ns=30 * MS, node=0, rail=0),
    ]).apply(cluster)
    cluster.sim.run(until=40 * MS)
    assert ma.states == [EdgeState.UP, EdgeState.UP]
    assert mb.states == [EdgeState.UP, EdgeState.UP]
    assert a.conn.active_rails == [0, 1]
    # Full cycle recorded, in order.
    states = [t.new for t in ma.transitions_for(0)]
    assert states == [
        EdgeState.SUSPECT, EdgeState.DOWN, EdgeState.RECOVERING, EdgeState.UP
    ]


def test_migration_requeues_stranded_frames():
    cluster, a, b, ma, mb = two_rail_cluster()
    FaultSchedule([PermanentFailure(at_ns=2 * MS, node=0, rail=0)]).apply(cluster)
    assert stream(cluster, a, b, 2_000_000)
    assert a.stats.migrated_frames > 0
    assert a.stats.edges_removed == 1


def test_congestion_does_not_trip_detector():
    # Saturate both rails with a large transfer; probe RTTs inflate behind
    # the full TX rings but no probe is lost, so every edge must stay UP.
    cluster, a, b, ma, mb = two_rail_cluster()
    assert stream(cluster, a, b, 4_000_000)
    assert ma.history == []
    assert mb.history == []
    # The striping score *does* see the congestion (backlog/RTT EWMA).
    assert all(m.probes_lost == 0 for m in ma.monitors)


def test_stale_probe_timeouts_do_not_flap_recovery():
    cluster, a, b, ma, mb = two_rail_cluster()
    FaultSchedule([
        PermanentFailure(at_ns=5 * MS, node=0, rail=0),
        Repair(at_ns=30 * MS, node=0, rail=0),
    ]).apply(cluster)
    cluster.sim.run(until=50 * MS)
    # Exactly one DOWN and one recovery per endpoint — no bonus flaps from
    # outage-era probes timing out after the repair.
    downs = [t for t in ma.transitions_for(0) if t.new is EdgeState.DOWN]
    assert len(downs) == 1
    assert ma.monitors[0].probes_stale > 0


def test_edge_transitions_traced():
    cluster, a, b, ma, mb = two_rail_cluster()
    FaultSchedule([PermanentFailure(at_ns=5 * MS, node=0, rail=0)]).apply(cluster)
    cluster.sim.run(until=20 * MS)
    recs = cluster.tracer.by_category("edge.state")
    assert recs, "transitions must be recorded through the tracer"
    payload = recs[0].payload
    assert {"conn", "rail", "old", "new", "reason"} <= set(payload)


def test_adaptive_striping_receives_scores():
    cluster = make_cluster("2Lu-1G", nodes=2)
    from dataclasses import replace

    cluster.config.protocol = replace(cluster.config.protocol, striping="adaptive")
    a, b = cluster.connect(0, 1)
    assert isinstance(a.conn.striping, AdaptiveStriping)
    ma, mb = cluster.enable_edge_control(0, 1)
    cluster.sim.run(until=5 * MS)
    assert a.conn.striping.score_of(0) > 0.9
    assert a.conn.striping.score_of(1) > 0.9


def test_adaptive_striping_skips_zero_score_rail():
    cluster = make_cluster("2Lu-1G", nodes=2)
    from dataclasses import replace

    cluster.config.protocol = replace(cluster.config.protocol, striping="adaptive")
    a, b = cluster.connect(0, 1)
    pol = a.conn.striping
    pol.set_score(0, 0.0)
    for _ in range(8):
        assert pol.next_rail(1500) == 1
    pol.set_score(0, 1.0)
    assert 0 in {pol.next_rail(1500) for _ in range(4)}


def test_detector_params_propagate():
    params = DetectorParams(probe_interval_ns=250_000, suspect_after_losses=3)
    cluster, a, b, ma, mb = two_rail_cluster(detector_params=params)
    assert ma.detector_params.probe_interval_ns == 250_000
    cluster.sim.run(until=3 * MS)
    assert ma.monitors[0].probes_sent >= 10  # 250 us cadence


def test_watch_new_rail_requires_order():
    cluster, a, b, ma, mb = two_rail_cluster()
    with pytest.raises(ValueError):
        ma.watch_new_rail(5)


def test_stop_halts_probing():
    cluster, a, b, ma, mb = two_rail_cluster()
    cluster.sim.run(until=5 * MS)
    ma.stop()
    sent = [m.probes_sent for m in ma.monitors]
    cluster.sim.run(until=10 * MS)
    assert [m.probes_sent for m in ma.monitors] == sent
