"""The ISSUE's failover acceptance scenario, end to end.

On a two-rail connection carrying a continuous stream, killing one rail
mid-transfer must be (a) detected within the configured detect window,
(b) survived with intact bytes, (c) degraded to no worse than 45% of the
two-rail baseline goodput, and (d) fully undone when the rail is
re-added — with the whole run bit-deterministic across repeats.
"""

from repro.bench import run_failover
from repro.control import DetectorParams, EdgeState

MS = 1_000_000

KILL_NS = 10 * MS
REPAIR_NS = 60 * MS
RUN_NS = 100 * MS


def run_once():
    return run_failover(
        config="2Lu-1G",
        kill_ns=KILL_NS,
        repair_ns=REPAIR_NS,
        run_ns=RUN_NS,
        seed=0,
    )


def fingerprint(result):
    """Every observable of a run, for bit-determinism comparison."""
    return (
        result.chunks_sent,
        result.data_intact,
        result.detected_ns,
        result.recovered_ns,
        result.baseline_goodput_bps,
        result.degraded_goodput_bps,
        result.recovered_goodput_bps,
        result.probe_frames,
        result.wire_frames,
        tuple(
            (t.time_ns, t.rail, t.old.value, t.new.value, t.reason)
            for t in result.transitions
        ),
    )


def test_failover_acceptance():
    result = run_once()

    # (a) detection within the configured window.
    bound = DetectorParams().detect_bound_ns
    assert result.detected_ns is not None, "rail death never detected"
    assert result.detect_latency_ns <= bound, (
        f"detected after {result.detect_latency_ns} ns, bound is {bound} ns"
    )

    # (b) the transfer keeps going and every byte arrives intact.
    assert result.data_intact
    assert result.chunks_sent > 0

    # (c) steady-state goodput after failover >= 45% of the 2-rail baseline.
    assert result.degraded_fraction >= 0.45, (
        f"degraded goodput is only {result.degraded_fraction:.1%} of baseline"
    )

    # (d) re-adding the rail restores striping across both rails: the edge
    # walks DOWN -> RECOVERING -> UP and goodput returns to baseline level.
    states = [t.new for t in result.transitions if t.rail == 0]
    assert EdgeState.DOWN in states
    assert EdgeState.RECOVERING in states
    assert states[-1] is EdgeState.UP
    assert result.recovered_ns is not None
    assert result.recovered_goodput_bps >= 0.9 * result.baseline_goodput_bps, (
        "re-striping after repair did not restore two-rail goodput"
    )


def test_failover_is_bit_deterministic():
    assert fingerprint(run_once()) == fingerprint(run_once())
