"""FaultSchedule conflict validation (FaultScheduleError).

Overlapping or contradictory fault windows were previously accepted
silently and produced nonsense (a window expiry "repairing" a crashed
node, a second gray window clobbering the first's saved pristine
state).  ``FaultSchedule.validate()`` — run automatically by
``apply()`` — now rejects them with a typed error naming both events.
"""

import pytest

from repro.bench import make_cluster
from repro.control import (
    Crash,
    DegradedLink,
    FaultSchedule,
    FaultScheduleError,
    IntermittentDrop,
    Outage,
    Restart,
    SlowNic,
    SlowNode,
)

MS = 1_000_000


def test_error_type_is_a_value_error():
    # Callers that caught ValueError keep working.
    assert issubclass(FaultScheduleError, ValueError)


def test_overlapping_gray_windows_same_edge_rejected():
    sched = FaultSchedule(
        [
            DegradedLink(at_ns=1 * MS, node=0, rail=0, duration_ns=4 * MS),
            IntermittentDrop(at_ns=3 * MS, node=0, rail=0, duration_ns=2 * MS),
        ]
    )
    with pytest.raises(FaultScheduleError, match="overlapping gray windows"):
        sched.validate()


def test_overlapping_slow_node_windows_rejected():
    sched = FaultSchedule(
        [
            SlowNode(at_ns=1 * MS, node=2, duration_ns=4 * MS),
            SlowNode(at_ns=2 * MS, node=2, duration_ns=1 * MS),
        ]
    )
    with pytest.raises(FaultScheduleError):
        sched.validate()


def test_disjoint_windows_and_distinct_targets_pass():
    FaultSchedule(
        [
            # Same edge, back to back (end is exclusive).
            DegradedLink(at_ns=1 * MS, node=0, rail=0, duration_ns=2 * MS),
            IntermittentDrop(at_ns=3 * MS, node=0, rail=0, duration_ns=2 * MS),
            # Overlapping in time but on different rails / nodes.
            SlowNic(at_ns=1 * MS, node=0, rail=1, duration_ns=9 * MS),
            SlowNode(at_ns=1 * MS, node=1, duration_ns=9 * MS),
        ]
    ).validate()


def test_crash_inside_gray_window_rejected():
    sched = FaultSchedule(
        [
            SlowNode(at_ns=1 * MS, node=1, duration_ns=5 * MS),
            Crash(at_ns=3 * MS, node=1),
        ]
    )
    with pytest.raises(FaultScheduleError, match="crash inside"):
        sched.validate()


def test_crash_inside_outage_window_rejected():
    sched = FaultSchedule(
        [
            Outage(at_ns=1 * MS, node=1, rail=0, duration_ns=5 * MS),
            Crash(at_ns=2 * MS, node=1),
        ]
    )
    with pytest.raises(FaultScheduleError):
        sched.validate()


def test_crash_outside_window_of_other_node_passes():
    FaultSchedule(
        [
            SlowNode(at_ns=1 * MS, node=1, duration_ns=2 * MS),
            Crash(at_ns=4 * MS, node=1),  # after the window
            Restart(at_ns=4 * MS, node=1, delay_ns=1 * MS),
            Crash(at_ns=2 * MS, node=2),  # inside, but a different node
            Restart(at_ns=2 * MS, node=2, delay_ns=1 * MS),
        ]
    ).validate()


def test_double_crash_without_restart_rejected():
    sched = FaultSchedule(
        [Crash(at_ns=1 * MS, node=0), Crash(at_ns=3 * MS, node=0)]
    )
    with pytest.raises(FaultScheduleError, match="second crash"):
        sched.validate()


def test_crash_restart_crash_passes():
    FaultSchedule(
        [
            Crash(at_ns=1 * MS, node=0),
            Restart(at_ns=1 * MS, node=0, delay_ns=1 * MS),
            Crash(at_ns=4 * MS, node=0),
            Restart(at_ns=4 * MS, node=0, delay_ns=1 * MS),
        ]
    ).validate()


def test_restart_landing_after_second_crash_rejected():
    # The restart "takes effect" at at_ns + delay_ns = 5ms, after the
    # second crash at 3ms — so the second crash hits a corpse.
    sched = FaultSchedule(
        [
            Crash(at_ns=1 * MS, node=0),
            Restart(at_ns=1 * MS, node=0, delay_ns=4 * MS),
            Crash(at_ns=3 * MS, node=0),
        ]
    )
    with pytest.raises(FaultScheduleError):
        sched.validate()


def test_apply_runs_validation():
    cluster = make_cluster("1L-1G", nodes=2)
    sched = FaultSchedule(
        [
            SlowNode(at_ns=1 * MS, node=1, duration_ns=4 * MS),
            SlowNode(at_ns=2 * MS, node=1, duration_ns=4 * MS),
        ]
    )
    with pytest.raises(FaultScheduleError):
        sched.apply(cluster)
