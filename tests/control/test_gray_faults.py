"""Gray (degraded-mode) fault injection: the five new event kinds.

Each test drives the real stack and asserts the *observable* symptom of
the fault — stretched service times, a backed-up TX ring, CRC drops,
burst loss, a half-open link — plus the restore: after the window every
impaired knob must be back at its pristine value, because gray faults
degrade live hardware, they don't replace it.
"""

import pytest

from repro.bench import make_cluster
from repro.bench.serve import run_serve
from repro.control import (
    AsymmetricPartition,
    Crash,
    DegradedLink,
    FaultSchedule,
    IntermittentDrop,
    Restart,
    SlowNic,
    SlowNode,
)
from repro.serve import ArrivalSpec, ServerSpec

MS = 1_000_000


def transfer(cluster, size=200_000, limit=5_000 * MS):
    a, b = cluster.connect(0, 1)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 251 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=limit)
    return b.node.memory.read(dst, size) == payload, a.stats


def test_event_validation():
    with pytest.raises(ValueError):
        SlowNode(at_ns=0, node=0, duration_ns=MS, factor=0.5)
    with pytest.raises(ValueError):
        SlowNode(at_ns=0, node=0, duration_ns=0)
    with pytest.raises(ValueError):
        SlowNic(at_ns=0, node=0, rail=0, duration_ns=MS, factor=0.9)
    with pytest.raises(ValueError):
        DegradedLink(at_ns=0, node=0, rail=0, duration_ns=MS,
                     bit_error_rate=1.0)
    with pytest.raises(ValueError):
        IntermittentDrop(at_ns=0, node=0, rail=0, duration_ns=MS, drop_p=0.0)
    with pytest.raises(ValueError):
        IntermittentDrop(at_ns=0, node=0, rail=0, duration_ns=MS,
                         burst_len=0.5)
    with pytest.raises(ValueError):
        AsymmetricPartition(at_ns=0, node=0, rail=0, duration_ns=MS,
                            direction="both")


def test_slow_node_stretches_service_and_restores():
    fault = [SlowNode(at_ns=1 * MS, node=1, duration_ns=4 * MS, factor=8.0)]
    slow = run_serve(
        config="1L-1G", n_clients=1, n_servers=2, policy="round-robin",
        arrival=ArrivalSpec(kind="poisson", rate_rps=10_000, batch=64),
        server=ServerSpec(queue_cap=64, workers=2, service=("fixed", 30_000)),
        duration_ns=8 * MS, seed=4, faults=fault,
    )
    assert not slow.violations, slow.violations
    # The slow server (rank 1) shows the stretch in its own tail; the
    # clean server (rank 2) does not.
    assert slow.p99_by_server[1] >= 8 * 30_000
    assert slow.p99_by_server[2] < slow.p99_by_server[1]


def test_slow_node_factor_resets_after_window():
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule(
        [SlowNode(at_ns=1 * MS, node=1, duration_ns=2 * MS, factor=4.0)]
    ).apply(cluster)
    cluster.sim.run_until_time(2 * MS)
    assert cluster.nodes[1].gray_slow_factor == 4.0
    assert cluster.nodes[1].gray_pump_extra_ns > 0
    cluster.sim.run_until_time(4 * MS)
    assert cluster.nodes[1].gray_slow_factor == 1.0
    assert cluster.nodes[1].gray_pump_extra_ns == 0


def test_slow_nic_throttles_and_restores():
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule(
        [SlowNic(at_ns=0, node=0, rail=0, duration_ns=10 * MS, factor=4.0)]
    ).apply(cluster)
    ok, _ = transfer(cluster, size=400_000)
    assert ok
    nic = cluster.nodes[0].nics[0]
    assert nic.gray_tx_throttle == 1.0  # window over, throttle reset
    # A throttled-for-the-whole-transfer run takes ~4x the wire time.
    fast = make_cluster("1L-1G", nodes=2)
    ok2, _ = transfer(fast, size=400_000)
    assert ok2
    assert cluster.sim.now > 2 * fast.sim.now


def test_degraded_link_raises_ber_then_restores():
    cluster = make_cluster("1L-1G", nodes=2)
    cable = cluster.cable(0, 0)
    pristine = cable.ab.params
    FaultSchedule(
        [DegradedLink(at_ns=0, node=0, rail=0, duration_ns=50 * MS,
                      bit_error_rate=2e-6, jitter_ns=5_000)]
    ).apply(cluster)
    ok, stats = transfer(cluster, size=400_000)
    assert ok  # retransmission rides over the bit errors
    assert stats.retransmitted_frames > 0
    cluster.sim.run_until_time(51 * MS)  # let the window expire
    assert cable.ab.params is pristine  # pristine params restored
    assert cable.ba.params.bit_error_rate == pristine.bit_error_rate


def test_intermittent_drop_loses_frames_in_bursts():
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule(
        [IntermittentDrop(at_ns=0, node=0, rail=0, duration_ns=50 * MS,
                          drop_p=0.05, burst_len=4.0)]
    ).apply(cluster)
    ok, stats = transfer(cluster, size=400_000)
    assert ok
    cable = cluster.cable(0, 0)
    lost = cable.ab.frames_lost_gray + cable.ba.frames_lost_gray
    assert lost > 0
    assert stats.retransmitted_frames > 0


def test_asymmetric_partition_is_one_directional():
    # Blackhole node 0's TX leg: requests vanish, the reverse leg lives.
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule(
        [AsymmetricPartition(at_ns=0, node=0, rail=0, duration_ns=2 * MS,
                             direction="tx")]
    ).apply(cluster)
    ok, stats = transfer(cluster, size=100_000)
    assert ok  # recovery after the window completes the transfer
    assert stats.retransmitted_frames > 0
    assert cluster.sim.now > 2 * MS  # nothing got through before repair


def test_crash_events_auto_enable_recovery():
    cluster = make_cluster("1L-1G", nodes=2)
    assert getattr(cluster, "recovery", None) is None
    FaultSchedule(
        [Crash(at_ns=2 * MS, node=1),
         Restart(at_ns=2 * MS, node=1, delay_ns=1 * MS)]
    ).apply(cluster)
    assert cluster.recovery is not None
    cluster.sim.run_until_time(5 * MS)
    assert cluster.recovery.crashes == 1
    assert cluster.recovery.restarts == 1
