"""The declarative fault-schedule driver."""

import pytest

from repro.bench import make_cluster
from repro.control import (
    BitErrorRamp,
    FaultSchedule,
    Flap,
    Outage,
    PermanentFailure,
    Repair,
)

MS = 1_000_000


def transfer(cluster, size=200_000):
    a, b = cluster.connect(0, 1)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 251 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=5_000 * MS)
    return b.node.memory.read(dst, size) == payload, a.stats


def test_event_validation():
    with pytest.raises(ValueError):
        Flap(at_ns=0, node=0, rail=0, period_ns=1 * MS, down_ns=2 * MS, count=3)
    with pytest.raises(ValueError):
        Flap(at_ns=0, node=0, rail=0, period_ns=1 * MS, down_ns=1 * MS, count=0)
    with pytest.raises(ValueError):
        BitErrorRamp(at_ns=0, node=0, rail=0, bit_error_rate=1.0)


def test_apply_is_single_shot():
    cluster = make_cluster("1L-1G", nodes=2)
    sched = FaultSchedule([Outage(at_ns=MS, node=0, rail=0, duration_ns=MS)])
    sched.apply(cluster)
    with pytest.raises(RuntimeError):
        sched.apply(cluster)
    with pytest.raises(RuntimeError):
        sched.add(Outage(at_ns=MS, node=0, rail=0, duration_ns=MS))


def test_unknown_edge_rejected():
    cluster = make_cluster("1L-1G", nodes=2)
    sched = FaultSchedule([Outage(at_ns=MS, node=9, rail=0, duration_ns=MS)])
    with pytest.raises(ValueError):
        sched.apply(cluster)


def test_outage_drops_frames_then_recovers():
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule([
        Outage(at_ns=2 * MS, node=0, rail=0, duration_ns=5 * MS),
    ]).apply(cluster)
    ok, stats = transfer(cluster)
    assert ok
    link = cluster.nodes[0].nics[0].tx_link
    assert link.frames_lost_outage > 0
    assert stats.retransmitted_frames > 0


def test_flap_produces_repeated_outages():
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule([
        Flap(at_ns=1 * MS, node=0, rail=0, period_ns=4 * MS,
             down_ns=1 * MS, count=4),
    ]).apply(cluster)
    ok, stats = transfer(cluster, size=400_000)
    assert ok
    assert cluster.nodes[0].nics[0].tx_link.frames_lost_outage > 0


def test_bit_error_ramp_is_scoped_to_one_edge():
    # All links share one LinkParams instance; the ramp must copy before
    # mutating or the whole cluster goes noisy.
    cluster = make_cluster("1L-1G", nodes=3)
    FaultSchedule([
        BitErrorRamp(at_ns=0, node=0, rail=0, bit_error_rate=1e-5),
    ]).apply(cluster)
    cluster.sim.run(until=1 * MS)
    assert cluster.cable(0, 0).ab.params.bit_error_rate == 1e-5
    assert cluster.cable(1, 0).ab.params.bit_error_rate == 0.0
    assert cluster.config.link.bit_error_rate == 0.0


def test_bit_error_ramp_causes_crc_drops_and_repair_clears():
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule([
        BitErrorRamp(at_ns=0, node=0, rail=0, bit_error_rate=1e-6),
        Repair(at_ns=8 * MS, node=0, rail=0),
    ]).apply(cluster)
    ok, stats = transfer(cluster, size=500_000)
    assert ok
    crc = sum(
        n.counters.rx_dropped_crc for node in cluster.nodes for n in node.nics
    )
    assert crc > 0
    cluster.sim.run(until=10 * MS)  # let the scheduled repair fire
    assert cluster.cable(0, 0).ab.params.bit_error_rate == 0.0


def test_permanent_failure_until_repair():
    cluster = make_cluster("1L-1G", nodes=2)
    FaultSchedule([
        PermanentFailure(at_ns=2 * MS, node=0, rail=0),
        Repair(at_ns=30 * MS, node=0, rail=0),
    ]).apply(cluster)
    ok, stats = transfer(cluster)
    assert ok  # single rail: the transfer stalls until the repair, then completes
    assert cluster.sim.now > 30 * MS
