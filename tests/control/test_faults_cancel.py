"""Withdrawing scheduled faults before they fire (shrinker fast path)."""

import pytest

from repro.bench import make_cluster
from repro.control import FaultSchedule, Flap, Outage

MS = 1_000_000


def test_cancelled_outage_never_fires():
    cluster = make_cluster("1L-1G", nodes=2)
    sched = FaultSchedule([Outage(at_ns=2 * MS, node=0, rail=0, duration_ns=MS)])
    sched.apply(cluster)
    cable = cluster.cable(0, 0)
    sched.cancel_pending(0)
    cluster.sim.run(until=5 * MS)
    assert not cable.ab.failed and not cable.ba.failed


def test_cancel_covers_every_flap_occurrence():
    cluster = make_cluster("1L-1G", nodes=2)
    sched = FaultSchedule(
        [Flap(at_ns=MS, node=0, rail=0, period_ns=MS, down_ns=MS // 2, count=3)]
    )
    sched.apply(cluster)
    assert len(sched._handles[0]) == 3
    sched.cancel_pending(0)
    cluster.sim.run(until=10 * MS)
    assert not cluster.cable(0, 0).ab.failed


def test_cancel_requires_future_start_time():
    cluster = make_cluster("1L-1G", nodes=2)
    sched = FaultSchedule([Outage(at_ns=MS, node=0, rail=0, duration_ns=MS)])
    sched.apply(cluster)
    cluster.sim.run(until=2 * MS)
    with pytest.raises(ValueError, match="already have fired"):
        sched.cancel_pending(0)


def test_cancel_before_apply_rejected():
    sched = FaultSchedule([Outage(at_ns=MS, node=0, rail=0, duration_ns=MS)])
    with pytest.raises(RuntimeError, match="not applied"):
        sched.cancel_pending(0)


def test_uncancelled_faults_still_fire():
    cluster = make_cluster("1L-1G", nodes=2)
    sched = FaultSchedule(
        [
            Outage(at_ns=2 * MS, node=0, rail=0, duration_ns=20 * MS),
            Outage(at_ns=3 * MS, node=1, rail=0, duration_ns=20 * MS),
        ]
    )
    sched.apply(cluster)
    sched.cancel_pending(0)
    cluster.sim.run(until=5 * MS)
    assert not cluster.cable(0, 0).ab.failed  # cancelled
    assert cluster.cable(1, 0).ab.failed  # survived the sibling's cancel