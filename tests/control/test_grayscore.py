"""Differential gray detection: population-median scoring, DEGRADED state.

The scorer's contract has three parts, each pinned here:

* **detection** — an edge whose EWMAs deviate from the population
  median (a throttled NIC) is marked DEGRADED after the hysteresis
  streak, and cleared after the fault lifts;
* **gentleness** — DEGRADED never masks the rail: probes keep flowing,
  no DOWN/SUSPECT transition fires, and only the striping score is
  capped;
* **caution** — below ``min_population`` comparable edges no median is
  trusted and nothing is ever flagged.
"""

import pytest

from repro.bench import make_cluster
from repro.control import (
    DetectorParams,
    FaultSchedule,
    GrayScoreParams,
    SlowNic,
)
from repro.control.detector import EdgeFailureDetector, EdgeState

MS = 1_000_000


def test_params_validation():
    with pytest.raises(ValueError):
        GrayScoreParams(check_interval_ns=0)
    with pytest.raises(ValueError):
        GrayScoreParams(rtt_factor=1.0)
    with pytest.raises(ValueError):
        GrayScoreParams(min_population=1)
    with pytest.raises(ValueError):
        GrayScoreParams(degrade_after=0)
    with pytest.raises(ValueError):
        GrayScoreParams(degraded_score=1.5)


def _gray_cluster(rails_config="2L-1G", rails=4, traffic_until_ns=40 * MS):
    """Cluster with gray detection + open-loop bulk load on the edge.

    A throttled NIC is only *visible* when something queues behind it:
    the probe path alone (tiny frames, big fixed processing cost) hides
    an 8x serialisation slowdown, which is exactly what makes the fault
    gray.  The pump keeps the TX rings busy so the backlog/RTT EWMAs
    carry signal.
    """
    cluster = make_cluster(rails_config, nodes=2, seed=7, rails=rails)
    a, b = cluster.connect(0, 1)
    cluster.enable_edge_control(0, 1, detector_params=DetectorParams())
    cluster.enable_gray_detection()
    size = 64_000
    src = b.node.memory.alloc(size)
    dst = a.node.memory.alloc(size)

    def pump():
        while cluster.sim.now < traffic_until_ns:
            handle = yield from b.rdma_write(src, dst, size)
            yield from handle.wait()

    cluster.sim.process(pump(), name="gray.pump")
    return cluster


def test_throttled_nic_marked_then_cleared():
    cluster = _gray_cluster()
    FaultSchedule(
        [SlowNic(at_ns=2 * MS, node=1, rail=1, duration_ns=30 * MS,
                 factor=8.0)]
    ).apply(cluster)
    cluster.sim.run_until_time(45 * MS)
    scorer = cluster.gray_scorer
    assert scorer.degrade_marks >= 1
    assert scorer.degrade_clears >= 1
    assert not scorer.flagged  # everything recovered by the end
    for mgr in cluster.control_planes.values():
        assert not mgr.gray_cap  # caps removed with the clears
        history = mgr.history
        # The gray path never escalates: DEGRADED happened, DOWN did not.
        assert not any(t.new is EdgeState.DOWN for t in history)
        assert not any(t.new is EdgeState.SUSPECT for t in history)
    degraded = [
        t
        for mgr in cluster.control_planes.values()
        for t in mgr.history
        if t.new is EdgeState.DEGRADED
    ]
    assert degraded, "the throttled rail was never flagged"
    assert all(t.rail == 1 for t in degraded), (
        "only the throttled rail may be flagged"
    )


def test_degraded_caps_score_but_keeps_probing():
    cluster = _gray_cluster()
    FaultSchedule(
        [SlowNic(at_ns=2 * MS, node=1, rail=1, duration_ns=30 * MS,
                 factor=8.0)]
    ).apply(cluster)
    cluster.sim.run_until_time(16 * MS)
    scorer = cluster.gray_scorer
    assert scorer.flagged, "mid-window the rail must be DEGRADED"
    flagged_mgr = scorer.managers[scorer.flagged[0][0]]
    rail = scorer.flagged[0][1]
    assert flagged_mgr.gray_cap[rail] == scorer.params.degraded_score
    acked_mid = flagged_mgr.monitors[rail].probes_acked
    assert acked_mid > 0
    # Residency accounting: the open DEGRADED interval is visible.
    t = flagged_mgr.detectors[rail].finalize_state_time(cluster.sim.now)
    assert t[EdgeState.DEGRADED] > 0
    cluster.sim.run_until_time(26 * MS)
    # DEGRADED is not DOWN: probes kept flowing the whole time.
    assert flagged_mgr.monitors[rail].probes_acked > acked_mid


def test_small_population_never_flags():
    # One rail -> two comparable edges (one per endpoint), below the
    # min_population=3 floor: no median is trustworthy, nothing flags.
    cluster = _gray_cluster(rails=1)
    FaultSchedule(
        [SlowNic(at_ns=2 * MS, node=1, rail=0, duration_ns=30 * MS,
                 factor=8.0)]
    ).apply(cluster)
    cluster.sim.run_until_time(40 * MS)
    scorer = cluster.gray_scorer
    assert scorer.checks > 0
    assert scorer.degrade_marks == 0
    assert not scorer.flagged


def test_clean_population_never_flags():
    cluster = _gray_cluster()
    cluster.sim.run_until_time(30 * MS)
    assert cluster.gray_scorer.checks > 0
    assert cluster.gray_scorer.degrade_marks == 0


def test_stop_halts_checks():
    cluster = _gray_cluster()
    cluster.sim.run_until_time(5 * MS)
    cluster.gray_scorer.stop()
    checks = cluster.gray_scorer.checks
    cluster.sim.run_until_time(15 * MS)
    assert cluster.gray_scorer.checks == checks


def test_mark_degraded_legal_only_from_up():
    det = EdgeFailureDetector(0, DetectorParams())
    assert det.state is EdgeState.UP
    det.mark_degraded(now=1000)
    assert det.state is EdgeState.DEGRADED
    det.mark_degraded(now=2000)  # idempotent no-op
    assert det.state is EdgeState.DEGRADED
    det.clear_degraded(now=3000)
    assert det.state is EdgeState.UP
    det.clear_degraded(now=4000)  # no-op from UP
    assert det.state is EdgeState.UP
    det.force_down(now=5000)
    det.mark_degraded(now=6000)  # illegal from DOWN: ignored
    assert det.state is EdgeState.DOWN


def test_gray_scorer_is_idempotent_on_cluster():
    cluster = _gray_cluster()
    first = cluster.gray_scorer
    cluster.enable_gray_detection()
    assert cluster.gray_scorer is first
