"""Detector refusal: every disqualifying condition keeps the flow frame-level.

Each test takes an otherwise-armable idle connection pair, introduces one
disqualifying condition, and asserts :func:`repro.fastpath.disqualify_reason`
names it — proving the fast path refuses to arm rather than jumping over a
discontinuity.
"""

from dataclasses import replace
from types import SimpleNamespace

from repro.bench.cluster import make_cluster
from repro.fastpath import disqualify_reason
from repro.verify import InvariantMonitor


def _pair(config="1L-1G", **overrides):
    cluster = make_cluster(config, fastpath=True, **overrides)
    a, b = cluster.connect(0, 1)
    return cluster, a.conn, b.conn


def _reason(conn):
    return disqualify_reason(conn.fastpath)


def test_idle_connection_is_armable():
    _, conn, _ = _pair()
    assert _reason(conn) is None


def test_monitor_attached_refuses():
    cluster, conn, _ = _pair()
    InvariantMonitor.attach(cluster)
    assert _reason(conn) == "monitor-attached"


def test_closed_connection_refuses():
    _, conn, peer = _pair()
    peer.closed = True
    assert _reason(conn) == "connection-closed"


def test_journal_replay_in_flight_refuses():
    _, conn, _ = _pair()
    channel = SimpleNamespace(_ready=object())
    conn.recovery = SimpleNamespace(_channels={"c": channel})
    assert _reason(conn) == "journal-replay-in-flight"


def test_recovery_attached_refuses():
    _, conn, peer = _pair()
    peer.recovery = SimpleNamespace(_channels={})
    assert _reason(conn) == "recovery-active"


def test_open_loss_episode_retransmit_queue_refuses():
    _, conn, _ = _pair()
    conn._retransmit_q.append(object())
    assert _reason(conn) == "open-loss-episode"


def test_open_loss_episode_receive_gap_refuses():
    _, conn, peer = _pair()
    peer.tracker._beyond.add(7)
    assert _reason(conn) == "open-loss-episode"


def test_frames_in_flight_refuses():
    _, conn, _ = _pair()
    conn.window.inflight[0] = object()
    assert _reason(conn) == "frames-in-flight"


def test_pending_ecn_echo_refuses():
    _, conn, peer = _pair()
    peer.ack_policy.note_ce()
    assert _reason(conn) == "pending-ecn-echo"


def test_unacked_frames_refuses():
    _, conn, peer = _pair()
    peer.ack_policy._unacked_frames = 3
    assert _reason(conn) == "unacked-frames"


def test_delayed_ack_timer_refuses():
    _, conn, peer = _pair()
    peer._delayed_ack_timer = peer.sim.timer(10_000, lambda: None)
    assert _reason(conn) == "delayed-ack-armed"


def test_nack_timer_refuses():
    _, conn, _ = _pair()
    conn._nack_timer = conn.sim.timer(10_000, lambda: None)
    assert _reason(conn) == "nack-timer-armed"


def test_active_fence_refuses():
    _, conn, _ = _pair()
    conn._forward_fences.append(object())
    assert _reason(conn) == "fence-active"


def test_read_in_flight_refuses():
    _, conn, _ = _pair()
    conn._pending_reads[1] = object()
    assert _reason(conn) == "read-in-flight"


def test_peer_sending_refuses():
    _, conn, peer = _pair()
    peer.unsent.append(object())
    assert _reason(conn) == "peer-sending"


def test_window_too_small_refuses():
    _, conn, _ = _pair()
    conn.window.size = 8  # < 2 * ack_every_frames (default 32)
    assert _reason(conn) == "window-too-small"


def test_cwnd_unstable_refuses():
    _, conn, _ = _pair()
    conn._cc = SimpleNamespace(cwnd_stable=lambda now: False)
    assert _reason(conn) == "cwnd-unstable"


def test_pacing_enabled_refuses():
    _, conn, _ = _pair()
    conn._pacing_on = True
    assert _reason(conn) == "pacing-enabled"


def test_nic_pacer_refuses():
    _, conn, _ = _pair()
    conn.nics[0].pacer = object()
    assert _reason(conn) == "pacing-enabled"


def test_suspect_edge_refuses():
    _, conn, _ = _pair()
    conn.control_plane = SimpleNamespace(
        states=[SimpleNamespace(name="SUSPECT")]
    )
    assert _reason(conn) == "edge-not-up"


def test_nic_powered_off_refuses():
    _, conn, peer = _pair()
    peer.nics[0].powered = False
    assert _reason(conn) == "nic-powered-off"


def test_nic_tx_ring_busy_refuses():
    _, conn, _ = _pair()
    conn.nics[0]._tx_ring_used = 1
    assert _reason(conn) == "nic-busy"


def test_nic_rx_pending_refuses():
    _, conn, peer = _pair()
    peer.nics[0]._rx_pending.append(object())
    assert _reason(conn) == "nic-busy"


def test_multi_hop_fabric_refuses():
    cluster = make_cluster("1L-1G", nodes=4, fastpath=True, leaf_switches=2)
    a, _ = cluster.connect(0, 1)
    assert _reason(a.conn) == "multi-hop-fabric"


def test_lossy_link_refuses():
    cluster, conn, _ = _pair()
    cluster.config.link = replace(cluster.config.link, bit_error_rate=1e-9)
    assert _reason(conn) == "lossy-link"


def test_ecn_enabled_refuses():
    cluster, conn, _ = _pair()
    cluster.set_ecn_threshold(8)
    assert _reason(conn) == "ecn-enabled"


def test_switch_queue_occupied_refuses():
    cluster, conn, _ = _pair()
    cluster.switches[0].ports[5]._queue.append(object())
    assert _reason(conn) == "switch-queue-occupied"


def test_fabric_busy_refuses():
    cluster, conn, _ = _pair()
    other, _ = cluster.connect(2, 3)
    other.conn.unsent.append(object())
    assert _reason(conn) == "fabric-busy"


def test_unsupported_op_shapes_rejected_by_planner():
    from repro.fastpath import UNSUPPORTED_OP_FLAGS
    from repro.ethernet import OpFlags

    for flag in (
        OpFlags.FENCE_BACKWARD,
        OpFlags.FENCE_FORWARD,
        OpFlags.SCATTER,
        OpFlags.JOURNALED,
    ):
        assert flag & UNSUPPORTED_OP_FLAGS


def test_denial_is_pure():
    """The detector draws no RNG and schedules nothing (event parity)."""
    cluster, conn, peer = _pair()
    sim = conn.sim
    queue_before = len(sim._queue)
    rng_states = {
        name: repr(rng.bit_generator.state)
        for name, rng in cluster.rng._streams.items()
    }
    peer.ack_policy._unacked_frames = 1
    assert _reason(conn) == "unacked-frames"
    assert len(sim._queue) == queue_before
    for name, rng in cluster.rng._streams.items():
        assert repr(rng.bit_generator.state) == rng_states[name]


def test_datacenter_fabric_refuses():
    """A repro.fabric multi-switch cluster must never arm the fast path:
    per-hop store-and-forward and ECMP path choice are not analytic."""
    from repro.fabric import LeafSpineSpec

    cluster = make_cluster(
        "1L-1G", nodes=4, fastpath=True,
        fabric=LeafSpineSpec(leaves=2, spines=2, hosts_per_leaf=2),
    )
    a, _ = cluster.connect(0, 1)
    assert _reason(a.conn) == "multi-hop-fabric"


def test_serve_arrivals_armed_refuses():
    """An armed open-loop arrival source guarantees future traffic the
    analytic jump cannot see — the detector must refuse while it lives."""
    cluster, conn, _ = _pair()
    cluster.serve = SimpleNamespace(arrivals_armed=True, active=False)
    assert _reason(conn) == "serve-arrivals-armed"


def test_serve_traffic_active_refuses():
    """Outstanding request/response pairs are bidirectional by
    construction; jumping one leg would skip the other."""
    cluster, conn, _ = _pair()
    cluster.serve = SimpleNamespace(arrivals_armed=False, active=True)
    assert _reason(conn) == "serve-traffic-active"


def test_serve_quiesced_rearms():
    """Once the serving layer fully drains, the fast path is eligible
    again — the refusal is load-shaped, not permanent."""
    cluster, conn, _ = _pair()
    cluster.serve = SimpleNamespace(arrivals_armed=False, active=False)
    assert _reason(conn) is None


def test_real_serve_runtime_disqualifies_while_armed():
    """End to end: enable_serving on a fastpath cluster -> disqualified
    for the whole loaded phase, re-eligible after the drain."""
    from repro.mp import MpWorld
    from repro.serve import ArrivalSpec, ServeConfig, enable_serving

    cluster = make_cluster("1L-1G", nodes=2, fastpath=True)
    world = MpWorld(cluster)
    rt = enable_serving(
        cluster,
        world,
        ServeConfig(
            clients=(0,),
            servers=(1,),
            arrival=ArrivalSpec(kind="poisson", rate_rps=20_000),
            duration_ns=1_000_000,
        ),
    )
    rt.start()
    a, _ = cluster.connect(0, 1)
    assert _reason(a.conn) == "serve-arrivals-armed"
    cluster.sim.run_until_time(1_000_000)
    cluster.sim.run(until=20_000_000)
    assert not rt.arrivals_armed and not rt.active
    assert _reason(a.conn) is None
