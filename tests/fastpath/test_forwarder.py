"""End-to-end fast-forward behaviour: parity, divergence, aborts, coverage."""

import pytest

from repro.analysis import summarize_cluster
from repro.bench.cluster import make_cluster
from repro.bench.micro import run_one_way
from repro.verify.fuzz import fingerprint, run_scenario, scenario_from_seed


def _one_way(config, fastpath, size=1 << 20, **kw):
    cluster = make_cluster(config, fastpath=fastpath, synthetic_payloads=True)
    result = run_one_way(cluster, size, **kw)
    return cluster, result


class TestFingerprintParity:
    def test_monitored_runs_never_arm_and_stay_byte_identical(self):
        for seed in (1, 2, 7, 11):
            sc = scenario_from_seed(seed)
            off = run_scenario(sc, use_monitor=True)
            on = run_scenario(sc, use_monitor=True, fastpath=True)
            assert off.ok and on.ok, (seed, off.failure or on.failure)
            assert on.fastpath_jumps == 0, seed
            assert off.fingerprint == on.fingerprint, seed

    def test_unmonitored_no_opportunity_runs_stay_identical(self):
        armed = 0
        for seed in range(1, 13):
            sc = scenario_from_seed(seed)
            off = run_scenario(sc, use_monitor=False)
            on = run_scenario(sc, use_monitor=False, fastpath=True)
            assert off.ok and on.ok, (seed, off.failure or on.failure)
            if on.fastpath_jumps:
                armed += 1
            else:
                assert off.fingerprint == on.fingerprint, seed


class TestDivergence:
    @pytest.mark.parametrize("config", ["1L-1G", "1L-10G", "2L-1G", "2Lu-1G"])
    def test_one_way_goodput_within_one_percent(self, config):
        _, off = _one_way(config, fastpath=False)
        on_cluster, on = _one_way(config, fastpath=True)
        stats = on_cluster.fastpath.stats
        assert stats.jumps >= 1, stats.denials
        div = abs(on.throughput_mbps - off.throughput_mbps) / off.throughput_mbps
        assert div < 0.01, f"{config}: {div * 100:.3f}% divergence"

    def test_counters_synthesized(self):
        _, off = _one_way("1L-1G", fastpath=False)
        cluster, on = _one_way("1L-1G", fastpath=True)
        # Frame/byte totals are exact; notifications must all arrive.
        assert on.data_frames == off.data_frames
        stats = cluster.fastpath.stats
        assert stats.ff_frames > 0
        assert stats.ff_bytes > 0


class TestAbort:
    def test_link_outage_aborts_jump_and_run_completes(self):
        cluster = make_cluster("1L-1G", fastpath=True, synthetic_payloads=True)
        cable = cluster.cable(0, 0)
        # Fail the cable mid-measurement (warmup takes ~35 ms of virtual
        # time and the stats reset at measurement start): the active jump
        # must abort back to frame level and the retransmit machinery must
        # finish the stream.
        cluster.sim.at(50_000_000, cable.ab.fail_for, 200_000)
        result = run_one_way(cluster, 1 << 20, iterations=8)
        stats = cluster.fastpath.stats
        assert "link-outage" in stats.abort_reasons, stats.abort_reasons
        assert result.elapsed_ns > 0  # the notification arrived

    def test_endpoint_destroy_detaches_forwarder(self):
        cluster = make_cluster("1L-1G", fastpath=True)
        a, _ = cluster.connect(0, 1)
        a.conn.destroy()
        assert a.conn.fastpath is None


class TestMemoryContent:
    def test_receiver_memory_identical_with_real_payloads(self):
        import hashlib

        digests = []
        for fastpath in (False, True):
            cluster = make_cluster("1L-1G", fastpath=fastpath)
            a, b = cluster.connect(0, 1)
            size = 256 * 1024
            src = a.node.memory.alloc(size)
            dst = b.node.memory.alloc(size)
            pattern = bytes((i * 31 + 7) % 251 for i in range(size))
            a.node.memory.write(src, pattern)

            from repro.ethernet import OpFlags

            def sender():
                yield from a.rdma_write(src, dst, size, flags=OpFlags.NOTIFY)

            def receiver():
                yield from b.wait_notification()

            rproc = cluster.sim.process(receiver())
            cluster.sim.process(sender())
            cluster.sim.run_until_done(rproc, limit=600_000_000_000)
            got = b.node.memory.read(dst, size)
            digests.append(hashlib.sha256(got).hexdigest())
            if fastpath:
                assert bytes(got) == pattern
        assert digests[0] == digests[1]


class TestCoverage:
    def test_summary_reports_fastpath_coverage(self):
        cluster, result = _one_way("1L-1G", fastpath=True)
        summary = summarize_cluster(cluster, result.elapsed_ns)
        assert summary.ff_jumps >= 1
        assert summary.ff_bytes > 0
        assert summary.ff_time_coverage_pct > 50.0

    def test_manager_coverage_reports_horizon(self):
        cluster, _ = _one_way("1L-1G", fastpath=True)
        report = cluster.fastpath.coverage()
        assert report["jumps"] >= 1
        assert "pending_horizon_ns" in report


class TestNextEventTime:
    def test_empty_sim_has_no_horizon(self):
        from repro.sim import Simulator

        sim = Simulator()
        assert sim.next_event_time() is None

    def test_horizon_tracks_earliest_pending_event(self):
        from repro.sim import Simulator

        sim = Simulator()
        sim.schedule(500, lambda: None)
        sim.schedule(100, lambda: None)
        assert sim.next_event_time() == 100

    def test_cancelled_head_is_skipped(self):
        from repro.sim import Simulator

        sim = Simulator()
        entry = sim.schedule_cancellable(100, lambda: None)
        sim.schedule(700, lambda: None)
        sim.cancel_scheduled(entry)
        assert sim.next_event_time() == 700


def test_frame_size_cache_is_bit_identical():
    from repro.ethernet.frame import (
        ETH_MIN_PAYLOAD,
        ETH_OVERHEAD_BYTES,
        MULTIEDGE_HEADER_BYTES,
        frame_sizes,
    )

    for plen in (0, 1, 64, 1000, 1464):
        mac_payload, wire = frame_sizes(plen)
        expected_mac = max(MULTIEDGE_HEADER_BYTES + plen, ETH_MIN_PAYLOAD)
        assert mac_payload == expected_mac
        assert wire == expected_mac + ETH_OVERHEAD_BYTES
        # The cache returns the same tuple every time.
        assert frame_sizes(plen) is frame_sizes(plen)
