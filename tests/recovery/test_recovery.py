"""Unit tests for the crash/recovery subsystem (repro.recovery).

Covers the pieces end-to-end scenarios exercise only in aggregate:
backoff policy arithmetic, retransmit-timer exhaustion edge cases, typed
exceptions surfacing through operation handles, NIC power cycling, the
incarnation stale-frame guard, receiver-side dedup, reconnect after a
*second* crash of the same peer, the DSM/MP crash hooks, and the crash
counters surfaced by ``summarize_cluster`` / ``ReconnectLatencyProbe``.
"""

import random
from types import SimpleNamespace

import pytest

from repro.analysis import ReconnectLatencyProbe, summarize_cluster
from repro.bench import make_cluster
from repro.control import Crash, FaultSchedule, Restart
from repro.core import (
    BackoffPolicy,
    PeerCrashed,
    RetransmitExhausted,
    RetransmitParams,
    RetransmitTimer,
)
from repro.dsm.region import PageState
from repro.dsm.runtime import DsmRuntime
from repro.ethernet import Frame, FrameType, MultiEdgeHeader
from repro.mp.endpoint import MpWorld
from repro.sim import Simulator

MS = 1_000_000


class TestBackoffPolicy:
    def test_geometric_growth_with_cap(self):
        policy = BackoffPolicy(base_ns=1 * MS, factor=2, cap_ns=8 * MS,
                               jitter_frac=0.0)
        delays = [policy.delay_ns(a) for a in range(6)]
        assert delays == [1 * MS, 2 * MS, 4 * MS, 8 * MS, 8 * MS, 8 * MS]

    def test_jitter_bounded_and_deterministic(self):
        policy = BackoffPolicy(base_ns=1 * MS, factor=2, cap_ns=8 * MS,
                               jitter_frac=0.25)
        a = [policy.delay_ns(i, random.Random("s")) for i in range(8)]
        b = [policy.delay_ns(i, random.Random("s")) for i in range(8)]
        assert a == b  # same seed, same delays
        for attempt, got in enumerate(a):
            base = min(1 * MS * 2**attempt, 8 * MS)
            assert base <= got <= int(base * 1.25)

    def test_worst_case_bounds_any_jittered_run(self):
        policy = BackoffPolicy(base_ns=3 * MS, factor=2, cap_ns=48 * MS,
                               jitter_frac=0.1, max_attempts=10)
        worst = policy.worst_case_total_ns()
        for seed in range(20):
            rng = random.Random(seed)
            total = sum(
                policy.delay_ns(a, rng) for a in range(policy.max_attempts)
            )
            assert total <= worst

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_ns=0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_ns=1, factor=0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_ns=1, jitter_frac=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_ns=1, max_attempts=0)


class TestRetransmitTimerEdgeCases:
    def _timer(self, sim, max_retries=2):
        fired, dead = [], []
        params = RetransmitParams(
            coarse_timeout_ns=1 * MS, backoff_factor=2,
            max_timeout_ns=4 * MS, max_retries=max_retries,
        )
        timer = RetransmitTimer(
            sim, params,
            on_timeout=lambda: (fired.append(sim.now), timer.arm()),
            on_dead=lambda: dead.append(sim.now),
        )
        return timer, fired, dead

    def test_exhaustion_fires_on_dead_once_and_stays_down(self):
        sim = Simulator()
        timer, fired, dead = self._timer(sim, max_retries=2)
        timer.arm()
        sim.run()
        # 2 allowed timeouts, then the third silent one declares dead.
        assert len(fired) == 2 and len(dead) == 1
        assert timer.exhausted and not timer.armed
        timer.arm()  # no-op once exhausted
        assert not timer.armed
        sim.run()
        assert len(dead) == 1  # on_dead never re-fires

    def test_backoff_doubles_up_to_cap(self):
        sim = Simulator()
        timer, fired, dead = self._timer(sim, max_retries=5)
        timer.arm()
        sim.run()
        gaps = [b - a for a, b in zip([0] + fired, fired + dead)]
        assert gaps == [1 * MS, 2 * MS, 4 * MS, 4 * MS, 4 * MS, 4 * MS]

    def test_progress_resets_exhaustion_and_backoff(self):
        sim = Simulator()
        timer, fired, dead = self._timer(sim, max_retries=2)
        timer.arm()
        sim.run()
        assert timer.exhausted
        timer.on_progress()
        assert not timer.exhausted and timer.consecutive_timeouts == 0
        timer.arm()
        assert timer.armed  # re-armable after fresh ack progress
        t0 = sim.now
        sim.run()
        assert fired[2] - t0 == 1 * MS  # backoff restarted from base

    def test_cancel_prevents_fire(self):
        sim = Simulator()
        timer, fired, dead = self._timer(sim)
        timer.arm()
        timer.cancel()
        sim.run()
        assert fired == [] and dead == []


def _two_node_cluster(config="1L-1G", **kw):
    cluster = make_cluster(config, nodes=2, synthetic_payloads=True, **kw)
    a, b = cluster.connect(0, 1)
    return cluster, a, b


class TestTypedExceptions:
    def test_peer_crashed_raises_through_handle_wait(self):
        cluster, a, b = _two_node_cluster()
        cluster.enable_edge_control(0, 1)  # PEER_DOWN escalation path
        recovery = cluster.enable_crash_recovery()
        caught = []

        def app():
            handle = yield from a.rdma_write(0, 0, 256_000)
            try:
                yield from handle.wait()
            except PeerCrashed as exc:
                caught.append(exc)

        proc = cluster.sim.process(app())
        cluster.sim.timer(1 * MS, lambda: recovery.crash(1))
        cluster.sim.run_until_done(proc, limit=100 * MS)
        assert len(caught) == 1
        assert caught[0].peer_node == 1

    def test_peer_crashed_raises_through_handle_test(self):
        cluster, a, b = _two_node_cluster()
        cluster.enable_crash_recovery()
        handles = []

        def app():
            handle = yield from a.rdma_write(0, 0, 64_000)
            handles.append(handle)

        proc = cluster.sim.process(app())
        cluster.sim.run_until_done(proc, limit=10 * MS)
        a.conn.destroy()  # default exc is PeerCrashed
        with pytest.raises(PeerCrashed):
            handles[0].test()

    def test_coarse_death_raises_retransmit_exhausted(self):
        cluster, a, b = _two_node_cluster()
        caught = []

        def app():
            handle = yield from a.rdma_write(0, 0, 256_000)
            try:
                yield from handle.wait()
            except RetransmitExhausted as exc:
                caught.append(exc)

        proc = cluster.sim.process(app())
        cluster.sim.timer(100_000, a.conn._on_coarse_dead)
        cluster.sim.run_until_done(proc, limit=100 * MS)
        assert len(caught) == 1
        assert caught[0].conn_id == a.conn.conn_id


class TestNicPowerCycle:
    def test_power_off_drops_arrivals_and_power_on_restores(self):
        cluster, a, b = _two_node_cluster()
        nic = cluster.nodes[1].nics[0]

        def app():
            yield from a.rdma_write(0, 0, 64_000)
            yield 20 * MS

        nic.power_off()
        nic.power_off()  # idempotent
        proc = cluster.sim.process(app())
        cluster.sim.run_until_done(proc, limit=40 * MS)
        assert not nic.powered
        assert nic.counters.rx_dropped_powered_off > 0
        assert nic._tx_ring_used == 0 and not nic._rx_pending
        nic.power_on()
        assert nic.powered


class TestIncarnationGuard:
    def test_stale_incarnation_frame_rejected(self):
        cluster, a, b = _two_node_cluster()
        cluster.enable_crash_recovery()
        conn = b.conn
        before = conn.stale_frames_rejected
        header = MultiEdgeHeader(
            frame_type=FrameType.DATA, connection_id=conn.conn_id,
            op_id=99, op_length=64, payload_length=64,
        )
        frame = Frame(src_mac=0, dst_mac=0, header=header)
        frame.incarnation = conn.peer_incarnation + 1  # from a dead epoch
        # The guard trips before the first yield of the receive generator.
        next(conn.handle_rx_frame(frame, None), None)
        assert conn.stale_frames_rejected == before + 1

    def test_matching_incarnation_passes_the_guard(self):
        cluster, a, b = _two_node_cluster()
        cluster.enable_crash_recovery()
        received = []

        def app():
            handle = yield from a.rdma_write(0, 0, 4096)
            yield from handle.wait()
            received.append(handle)

        proc = cluster.sim.process(app())
        cluster.sim.run_until_done(proc, limit=100 * MS)
        assert received and b.conn.stale_frames_rejected == 0

    def test_receiver_dedup_keyed_on_incarnation(self):
        cluster, a, b = _two_node_cluster()
        recovery = cluster.enable_crash_recovery()
        conn = SimpleNamespace(
            node=SimpleNamespace(node_id=1), peer_node_id=0,
            peer_incarnation=0,
        )
        rx_op = SimpleNamespace(op_seq=5)
        assert recovery.accept_delivery(conn, rx_op)
        assert not recovery.accept_delivery(conn, rx_op)  # replayed
        conn.peer_incarnation = 1  # fresh epoch: new key space
        assert recovery.accept_delivery(conn, rx_op)


def _crash_stream(crash_specs, run_ns, config="2Lu-1G"):
    """Journaled 0->1 stream with scheduled receiver crashes."""
    cluster = make_cluster(config, nodes=2, seed=0, synthetic_payloads=True)
    cluster.connect(0, 1)
    cluster.enable_edge_control(0, 1)
    recovery = cluster.enable_crash_recovery()
    probe = ReconnectLatencyProbe(recovery)
    channel = recovery.channel(0, 1)
    events = []
    for at_ns, delay_ns in crash_specs:
        events.append(Crash(at_ns=at_ns, node=1))
        events.append(Restart(at_ns=at_ns, node=1, delay_ns=delay_ns))
    FaultSchedule(events).apply(cluster)

    def stream():
        addr = 0
        while cluster.sim.now < run_ns:
            yield from channel.send(addr, addr, 2048)
            addr += 2048
            yield 50_000

    proc = cluster.sim.process(stream())
    cluster.sim.run_until_done(proc, limit=run_ns + 500 * MS)
    for mgr in list(cluster.control_planes.values()):
        mgr.stop()
    cluster.sim.run()
    return cluster, recovery, channel, probe


class TestClusterRecoveryEndToEnd:
    def test_single_crash_exactly_once_with_probe_and_summary(self):
        cluster, recovery, channel, probe = _crash_stream(
            [(6 * MS, 3 * MS)], run_ns=25 * MS
        )
        assert recovery.crashes == 1 and recovery.restarts == 1
        assert recovery.reconnects == 1 and recovery.reconnects_failed == 0
        # Exactly-once: each sent message acked and logged exactly once.
        assert all(e.delivered for e in channel.journal.entries)
        assert len(recovery.nodes[1].delivered) == channel.messages_sent
        assert channel.redeliveries > 0

        assert len(probe.samples) == 1
        assert probe.mean() > 0 and probe.peak() == probe.samples[0].value

        summary = summarize_cluster(cluster)
        assert summary.node_crashes == 1 and summary.node_restarts == 1
        assert summary.peer_down_events == 1 and summary.reconnects == 1
        assert summary.reconnect_latency_max_ns == probe.peak()
        assert summary.messages_journaled == channel.messages_sent
        assert summary.messages_redelivered == channel.redeliveries
        assert summary.duplicate_msgs_suppressed >= 0

    def test_second_crash_of_same_peer_also_recovers(self):
        # The reconnect re-arms edge control, so crash #2 must be detected
        # and healed exactly like crash #1.
        cluster, recovery, channel, probe = _crash_stream(
            [(6 * MS, 3 * MS), (25 * MS, 3 * MS)], run_ns=45 * MS
        )
        assert recovery.crashes == 2 and recovery.restarts == 2
        assert recovery.reconnects == 2
        assert len(probe.samples) == 2
        assert all(e.delivered for e in channel.journal.entries)
        assert len(recovery.nodes[1].delivered) == channel.messages_sent
        assert recovery.nodes[1].incarnation == 2


class TestDomainHooks:
    def test_mp_recv_from_crashed_peer_raises(self):
        cluster = make_cluster("1L-1G", nodes=2, synthetic_payloads=True)
        cluster.connect(0, 1)
        recovery = cluster.enable_crash_recovery()
        world = MpWorld(cluster)
        caught = []

        def prog():
            try:
                yield from world.endpoints[0].recv(source=1)
            except PeerCrashed as exc:
                caught.append(exc)

        proc = cluster.sim.process(prog())
        cluster.sim.timer(1 * MS, lambda: recovery.crash(1))
        cluster.sim.run_until_done(proc, limit=50 * MS)
        assert len(caught) == 1 and caught[0].peer_node == 1

    def test_dsm_invalidates_cached_pages_homed_at_crashed_peer(self):
        cluster = make_cluster("1L-1G", nodes=2, synthetic_payloads=True)
        recovery = cluster.enable_crash_recovery()
        runtime = DsmRuntime(cluster)
        region = runtime.alloc_region("r", 4 * 4096, home="fixed:1")
        pt = runtime.nodes[0].page_tables[region.region_id]
        # Node 0 holds a clean cached copy of a page homed at node 1.
        pt.state[0] = PageState.VALID
        recovery.crash(1)
        assert pt.state[0] is PageState.INVALID
        # The home's own (authoritative, restored-on-reboot) copies stay.
        home_pt = runtime.nodes[1].page_tables[region.region_id]
        assert all(s is PageState.VALID for s in home_pt.state)
