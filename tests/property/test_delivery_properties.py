"""Property-based tests of end-to-end delivery invariants.

These run small randomized workloads through the *full* simulated stack
and check the invariants that must hold regardless of sizes, fault
injection, or configuration:

* every RDMA write eventually lands the exact bytes, even with bit errors,
* delivery order under in-order mode is strict,
* simulations are deterministic functions of their seed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.cluster import make_cluster
from repro.ethernet import LinkParams


def _transfer(config, sizes, ber=0.0, seed=0):
    link = LinkParams(
        speed_bps=10e9 if config == "1L-10G" else 1e9, bit_error_rate=ber
    )
    cluster = make_cluster(config, nodes=2, seed=seed, link=link)
    a, b = cluster.connect(0, 1)
    payloads = []
    dsts = []
    for i, size in enumerate(sizes):
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        payload = bytes((i + j) % 256 for j in range(size))
        a.node.memory.write(src, payload)
        payloads.append((src, dst, payload))
        dsts.append(dst)

    def app():
        handles = []
        for src, dst, payload in payloads:
            h = yield from a.rdma_write(src, dst, len(payload))
            handles.append(h)
        for h in handles:
            yield from h.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=60_000_000_000)
    return cluster, b, payloads


transfer_sizes = st.lists(
    st.integers(1, 20_000), min_size=1, max_size=6
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(transfer_sizes, st.sampled_from(["1L-1G", "2L-1G", "2Lu-1G"]))
def test_all_writes_land_exact_bytes(sizes, config):
    _, b, payloads = _transfer(config, sizes)
    for _, dst, payload in payloads:
        assert b.node.memory.read(dst, len(payload)) == payload


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    transfer_sizes,
    st.floats(min_value=1e-8, max_value=2e-6),
    st.integers(0, 2**16),
)
def test_delivery_survives_bit_errors(sizes, ber, seed):
    _, b, payloads = _transfer("1L-1G", sizes, ber=ber, seed=seed)
    for _, dst, payload in payloads:
        assert b.node.memory.read(dst, len(payload)) == payload


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(transfer_sizes, st.integers(0, 2**16))
def test_simulation_deterministic_per_seed(sizes, seed):
    c1, _, _ = _transfer("2Lu-1G", sizes, seed=seed)
    c2, _, _ = _transfer("2Lu-1G", sizes, seed=seed)
    assert c1.sim.now == c2.sim.now
    assert c1.sim.events_processed == c2.sim.events_processed


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(st.integers(100, 8_000), min_size=2, max_size=5))
def test_in_order_mode_applies_sequentially(sizes):
    """In 2L-1G mode the receiver's apply order must equal seq order."""
    cluster = make_cluster("2L-1G", nodes=2)
    a, b = cluster.connect(0, 1)
    applied_seqs = []
    original = b.conn._apply_frame

    def spy(frame, cpu):
        applied_seqs.append(frame.header.seq)
        return original(frame, cpu)

    b.conn._apply_frame = spy
    srcs = []
    for i, size in enumerate(sizes):
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        a.node.memory.write(src, bytes(i % 256 for _ in range(size)))
        srcs.append((src, dst, size))

    def app():
        handles = []
        for src, dst, size in srcs:
            h = yield from a.rdma_write(src, dst, size)
            handles.append(h)
        for h in handles:
            yield from h.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=60_000_000_000)
    assert applied_seqs == sorted(applied_seqs)
