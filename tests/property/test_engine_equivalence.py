"""Property tests: the two-lane engine is order-identical to the seed engine.

The optimised :class:`repro.sim.core.Simulator` (same-timestamp fast lane,
lazy-deleted timers) must execute any program of schedules, timers,
cancellations, events, and processes in *exactly* the order of the frozen
seed engine preserved in :mod:`repro.sim.reference`.  Both engines run the
same randomly generated program; every callback appends ``(now, id)`` to a
log, and the logs must match element for element.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator
from repro.sim.reference import SeedSimulator

# One program step: (op, delay, extra) interpreted by _run_program.  Delays
# are small so many events collide on the same timestamp — the regime where
# ordering bugs live.
_steps = st.lists(
    st.tuples(
        st.sampled_from(
            ["schedule", "nested", "timer", "timer_cancel", "event", "sleep"]
        ),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


def _run_program(sim, steps):
    """Execute the step program on ``sim``; returns the execution log."""
    log = []
    counter = [0]

    def fire(tag):
        log.append((sim.now, tag))

    def nested(tag, delay, depth):
        # A callback that schedules more work when it runs.
        log.append((sim.now, tag))
        if depth > 0:
            counter[0] += 1
            sim.schedule(delay, nested, f"{tag}.n{counter[0]}", delay, depth - 1)

    def driver():
        timers = []
        for i, (op, delay, extra) in enumerate(steps):
            tag = f"{op}{i}"
            if op == "schedule":
                sim.schedule(delay, fire, tag)
            elif op == "nested":
                sim.schedule(delay, nested, tag, extra, 2)
            elif op == "timer":
                timers.append(sim.timer(delay, fire, tag))
            elif op == "timer_cancel":
                t = sim.timer(delay + 1, fire, tag + ".MUST_NOT_FIRE")
                t.cancel()
            elif op == "event":
                ev = sim.event()
                sim.schedule(delay, ev.trigger, tag)
                value = yield ev
                log.append((sim.now, f"woke:{value}"))
            elif op == "sleep":
                yield delay
                log.append((sim.now, f"slept:{tag}"))
        # Let every straggler (timers, nested schedules) drain.
        yield 1_000

    proc = sim.process(driver(), name="driver")
    sim.run_until_done(proc)
    sim.run()  # anything scheduled after the driver finished
    return log


@settings(max_examples=200, deadline=None)
@given(steps=_steps)
def test_fastlane_engine_orders_events_like_seed_engine(steps):
    fast_log = _run_program(Simulator(), steps)
    seed_log = _run_program(SeedSimulator(), steps)
    assert fast_log == seed_log
    assert all("MUST_NOT_FIRE" not in str(tag) for _, tag in fast_log)


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=12)
)
def test_simultaneous_process_wakeups_match_seed_order(delays):
    """Many processes sleeping onto the same timestamps wake in seed order."""

    def run(sim):
        log = []

        def sleeper(tag, delay):
            yield delay
            log.append((sim.now, tag))
            yield delay
            log.append((sim.now, tag + "'"))

        for i, d in enumerate(delays):
            sim.process(sleeper(f"p{i}", d), name=f"p{i}")
        sim.run()
        return log

    assert run(Simulator()) == run(SeedSimulator())
