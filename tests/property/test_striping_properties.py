"""Property-based tests on striping fairness and ordering managers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FenceDelivery, InOrderDelivery, RoundRobinStriping
from repro.ethernet import Frame, FrameType, MultiEdgeHeader, Nic, NicParams, OpFlags
from repro.sim import Simulator


def make_nics(count, ring=10_000):
    sim = Simulator()
    return [
        Nic(sim, NicParams(tx_ring_frames=ring, tx_jitter_ns=0), mac=i)
        for i in range(count)
    ]


@given(
    st.integers(2, 4),
    st.lists(st.integers(64, 1538), min_size=10, max_size=300),
)
def test_round_robin_byte_balance(rails, frame_sizes):
    """Cumulative byte skew between rails stays bounded by one max frame."""
    policy = RoundRobinStriping(make_nics(rails))
    assigned = [0] * rails
    for size in frame_sizes:
        rail = policy.next_rail(size)
        assigned[rail] += size
    skew = max(assigned) - min(assigned)
    assert skew <= max(frame_sizes) + 1538


@given(st.lists(st.just(1538), min_size=6, max_size=60))
def test_round_robin_equal_frames_pure_rotation(frames):
    """With equal-size frames the policy degenerates to plain round-robin."""
    policy = RoundRobinStriping(make_nics(3))
    rails = [policy.next_rail(s) for s in frames]
    assert rails == [i % 3 for i in range(len(frames))]


def _frame(seq, op_seq, op_len, payload_len, fenced=False):
    return Frame(
        src_mac=1,
        dst_mac=2,
        header=MultiEdgeHeader(
            frame_type=FrameType.DATA,
            flags=OpFlags.FENCE_BACKWARD if fenced else 0,
            seq=seq,
            op_id=op_seq + 100,
            op_seq=op_seq,
            op_length=op_len,
            payload_length=payload_len,
        ),
        payload=bytes(payload_len),
    )


@settings(deadline=None)
@given(st.permutations(list(range(12))))
def test_in_order_delivery_applies_in_seq_order(order):
    """Any arrival permutation applies frames in strict sequence order."""
    d = InOrderDelivery()
    applied = []
    for seq in order:
        batch, _ = d.on_frame(_frame(seq, op_seq=seq, op_len=100, payload_len=100))
        applied.extend(f.header.seq for f in batch)
    assert applied == list(range(12))
    assert d.buffered == 0


@settings(deadline=None)
@given(
    st.permutations(list(range(10))),
    st.sets(st.integers(0, 9)),
)
def test_fence_delivery_applies_everything_eventually(order, fenced_ops):
    """Every frame applies exactly once regardless of fences and order,
    and a fenced op is never applied before all its predecessors."""
    d = FenceDelivery()
    applied: list[int] = []
    for seq in order:
        batch, _ = d.on_frame(
            _frame(
                seq,
                op_seq=seq,
                op_len=100,
                payload_len=100,
                fenced=seq in fenced_ops,
            )
        )
        for f in batch:
            op_seq = f.header.op_seq
            if f.header.flags & OpFlags.FENCE_BACKWARD:
                assert all(p in applied for p in range(op_seq)), (
                    f"fenced op {op_seq} applied before predecessors"
                )
            applied.append(op_seq)
    assert sorted(applied) == list(range(10))
    assert d.buffered == 0
