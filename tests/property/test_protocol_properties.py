"""Property-based tests on protocol data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ReceiveTracker, SendWindow
from repro.core.messages import (
    decode_scatter_records,
    encode_scatter_records,
)
from repro.dsm.runtime import _diff_runs
from repro.ethernet import MULTIEDGE_HEADER_BYTES, FrameType, MultiEdgeHeader

PAGE = 4096


# ---------------------------------------------------------------------------
# Header codec
# ---------------------------------------------------------------------------

header_strategy = st.builds(
    MultiEdgeHeader,
    frame_type=st.sampled_from(list(FrameType)),
    flags=st.integers(0, 255),
    connection_id=st.integers(0, 2**16 - 1),
    seq=st.integers(0, 2**32 - 1),
    ack=st.integers(0, 2**32 - 1),
    op_id=st.integers(0, 2**32 - 1),
    op_seq=st.integers(0, 2**32 - 1),
    remote_address=st.integers(0, 2**64 - 1),
    op_length=st.integers(0, 2**32 - 1),
    payload_length=st.integers(0, 1464),
)


@given(header_strategy)
def test_header_roundtrip_property(header):
    wire = header.encode()
    assert len(wire) == MULTIEDGE_HEADER_BYTES
    assert MultiEdgeHeader.decode(wire) == header


# ---------------------------------------------------------------------------
# Receive tracker: arbitrary arrival orders
# ---------------------------------------------------------------------------

@given(st.permutations(list(range(40))))
def test_tracker_absorbs_any_permutation(order):
    t = ReceiveTracker()
    for seq in order:
        is_new, _ = t.on_frame(seq)
        assert is_new
    assert t.cum_ack == 40
    assert not t.has_gap()
    assert t.missing() == []


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=120),
)
def test_tracker_duplicates_never_advance_past_max(seqs):
    t = ReceiveTracker()
    seen = set()
    for seq in seqs:
        is_new, _ = t.on_frame(seq)
        assert is_new == (seq not in seen)
        seen.add(seq)
        # cum_ack is exactly the length of the contiguous prefix received.
        expected = 0
        while expected in seen:
            expected += 1
        assert t.cum_ack == expected


@given(st.sets(st.integers(0, 60), min_size=1, max_size=40))
def test_tracker_missing_is_exact_complement(seqs):
    t = ReceiveTracker()
    for seq in sorted(seqs):
        t.on_frame(seq)
    top = max(seqs)
    expected_missing = [
        s for s in range(t.expected, top) if s not in seqs
    ]
    assert t.missing(limit=1000) == expected_missing


# ---------------------------------------------------------------------------
# Send window: conservation of frames
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 64)),
        min_size=1,
        max_size=200,
    )
)
def test_window_conservation(ops):
    """Frames are either in flight or freed, never both, never lost."""
    from repro.ethernet import Frame

    w = SendWindow(32)
    freed_total = 0
    sent_total = 0
    for is_send, ack_to in ops:
        if is_send and w.can_send:
            seq = w.allocate_seq()
            frame = Frame(
                src_mac=0, dst_mac=1, header=MultiEdgeHeader(seq=seq)
            )
            w.register(frame, op_id=0, now=0)
            sent_total += 1
        else:
            freed = w.on_ack(ack_to)
            freed_total += len(freed)
            # Every freed frame has seq < ack value.
            assert all(r.frame.header.seq < ack_to for r in freed)
        assert w.in_flight_count + freed_total == sent_total
        assert 0 <= w.in_flight_count <= 32


# ---------------------------------------------------------------------------
# Diff runs: exactness on random pages
# ---------------------------------------------------------------------------

@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, PAGE),
)
def test_diff_runs_exact_cover(seed, nflips):
    rng = np.random.default_rng(seed)
    twin = rng.integers(0, 256, PAGE, dtype=np.uint8)
    cur = twin.copy()
    if nflips:
        idx = rng.choice(PAGE, size=min(nflips, PAGE), replace=False)
        cur[idx] ^= np.uint8(0xFF)
    runs = _diff_runs(twin, cur)
    covered = np.zeros(PAGE, dtype=bool)
    for start, length in runs:
        assert length > 0
        assert 0 <= start and start + length <= PAGE
        assert not covered[start : start + length].any(), "overlapping runs"
        covered[start : start + length] = True
    # Exactness both ways: every changed byte covered, no unchanged byte.
    assert np.array_equal(covered, twin != cur)


# ---------------------------------------------------------------------------
# Scatter record codec
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.integers(0, 2**48),
            st.binary(min_size=1, max_size=200),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_scatter_records_roundtrip(segments):
    wire = encode_scatter_records(segments)
    assert decode_scatter_records(wire) == segments
