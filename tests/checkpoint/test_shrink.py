"""Checkpoint-accelerated shrinking: fast probes must equal cold runs."""

from dataclasses import replace

import pytest

from repro.checkpoint.fork import HAVE_FORK
from repro.checkpoint.shrink import (
    CheckpointedShrinker,
    _dropped_fault_indices,
    shrink_scenario_checkpointed,
)
from repro.control import Outage, PermanentFailure
from repro.verify.fuzz import (
    OpSpec,
    ScenarioRun,
    run_scenario,
    scenario_from_seed,
    shrink_scenario,
)


def failing_scenario():
    """A genuinely failing case: a single-rail write whose only path is
    permanently killed mid-transfer (no control plane, no failover), plus
    two red-herring outages the shrinker should drop."""
    return replace(
        scenario_from_seed(5, "small", "none"),
        config="1L-1G",
        nodes=2,
        striping=None,
        control_plane=False,
        ops=(OpSpec(src=0, dst=1, kind="write", size=262144, wait=True),),
        faults=(
            PermanentFailure(at_ns=200_000, node=0, rail=0),
            Outage(at_ns=400_000, node=1, rail=0, duration_ns=100_000),
            Outage(at_ns=600_000, node=0, rail=0, duration_ns=100_000),
        ),
        limit_ns=50_000_000,
    )


class TestCandidateMatching:
    def test_fault_subsets_recognised(self):
        sc = failing_scenario()
        assert _dropped_fault_indices(sc, sc) == ()
        assert _dropped_fault_indices(sc, replace(sc, faults=sc.faults[1:])) == (0,)
        assert _dropped_fault_indices(sc, replace(sc, faults=sc.faults[:1])) == (1, 2)

    def test_non_fault_changes_rejected(self):
        sc = failing_scenario()
        assert _dropped_fault_indices(sc, replace(sc, nodes=3)) is None
        smaller_op = replace(sc, ops=(replace(sc.ops[0], size=64),))
        assert _dropped_fault_indices(sc, smaller_op) is None
        reordered = replace(sc, faults=(sc.faults[1], sc.faults[0]))
        assert _dropped_fault_indices(sc, reordered) is None


class TestCancelledFaultEqualsAbsentFault:
    def test_cancel_pending_matches_cold_run(self):
        """Withdrawing a not-yet-fired fault from a paused run must finish
        bit-identically to a run built without that fault."""
        sc = failing_scenario()
        dropped = replace(sc, faults=sc.faults[:1])  # drop both outages
        cold = run_scenario(dropped)

        run = ScenarioRun(sc)
        run.run_to(100_000)  # before every fault
        run.faults.cancel_pending(1)
        run.faults.cancel_pending(2)
        res = run.finish()
        assert res.fingerprint == cold.fingerprint
        assert res.elapsed_ns == cold.elapsed_ns
        assert res.failure == cold.failure

    def test_cancel_after_start_time_rejected(self):
        sc = failing_scenario()
        run = ScenarioRun(sc)
        run.run_to(450_000)  # fault 1 (at 400 us) already fired
        with pytest.raises(ValueError, match="already have fired"):
            run.faults.cancel_pending(1)


@pytest.mark.skipif(not HAVE_FORK, reason="requires os.fork")
class TestCheckpointedShrink:
    def test_same_minimal_scenario_as_cold_shrinker(self):
        sc = failing_scenario()
        cold = shrink_scenario(sc)
        fast, stats = shrink_scenario_checkpointed(sc)
        assert fast == cold
        assert len(fast.faults) == 1  # both outages shed, the killer kept
        assert stats.fast_probes > 0  # the fork point actually answered

    def test_oracle_verdicts_match_cold_execution(self):
        sc = failing_scenario()
        with CheckpointedShrinker(sc) as oracle:
            for cand in (
                sc,
                replace(sc, faults=sc.faults[:1]),
                replace(sc, faults=sc.faults[1:]),  # drops the real killer
            ):
                assert oracle.fails(cand) == (not run_scenario(cand).ok)
            assert oracle.stats.fast_probes >= 2
