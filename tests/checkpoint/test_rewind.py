"""Rewind-to-violation: periodic checkpoints + traced replay of the window."""

import pytest

from repro.checkpoint.rewind import run_with_rewind
from repro.verify.fuzz import ScenarioRun, scenario_from_seed
from repro.verify.monitor import InvariantMonitor

# Mid-traffic for seed 1, whose workload processes finish at ~1.36 ms
# (run_to clamps there, so a later instant would never be reached live).
PLANT_AT = 1_000_000


@pytest.fixture
def planted_violation(monkeypatch):
    """Schedule a synthetic violation at a fixed instant in every
    ScenarioRun built while active — original run and replays alike, so
    the injected event is part of the deterministic schedule."""
    orig = ScenarioRun.__init__

    def patched(self, *args, **kwargs):
        orig(self, *args, **kwargs)
        if self.monitor is not None:
            self.cluster.sim.schedule(
                PLANT_AT, self.monitor._violation, "planted", "injected"
            )

    monkeypatch.setattr(ScenarioRun, "__init__", patched)


class TestCleanRun:
    def test_checkpoint_trail_no_rewind(self):
        sc = scenario_from_seed(1)
        rr = run_with_rewind(sc, interval_ns=300_000)
        assert rr.result.ok
        assert rr.violation is None and rr.debug_run is None
        assert len(rr.checkpoints) >= 2
        times = [ck.time_ns for ck in rr.checkpoints]
        assert times == sorted(times)
        assert rr.trace_records == []


class TestRewind:
    def test_rewinds_to_nearest_checkpoint_with_trace(self, planted_violation):
        sc = scenario_from_seed(1)
        rr = run_with_rewind(sc, interval_ns=400_000, collect=True)
        assert rr.violation is not None
        assert rr.violation.invariant == "planted"
        assert rr.violation.time_ns == PLANT_AT
        # Nearest checkpoint at or before the violation, and no later one
        # also at or before it.
        assert rr.checkpoint is not None
        assert rr.checkpoint.time_ns <= PLANT_AT
        later = [
            ck
            for ck in rr.checkpoints
            if rr.checkpoint.time_ns < ck.time_ns <= PLANT_AT
        ]
        assert later == []
        # The debug replay is traced, paused at the violation instant, and
        # actually captured frames in the failure window.
        assert rr.debug_run is not None and rr.debug_run.trace
        assert rr.debug_run.cluster.sim.now <= PLANT_AT
        window = [
            rec
            for rec in rr.trace_records
            if rr.checkpoint.time_ns <= rec.time <= PLANT_AT
        ]
        assert window, "no frames traced in the rewound window"

    def test_on_violation_hook_fires_with_stamped_time(self):
        mon = InvariantMonitor(collect=True)
        seen = []
        mon.on_violation = seen.append
        mon._violation("test-invariant", "detail")
        assert len(seen) == 1
        assert seen[0].invariant == "test-invariant"
        assert seen[0].time_ns == 0  # no cluster attached: stamped zero
