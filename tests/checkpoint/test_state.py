"""Unit tests for the reflective state capture walker."""

import random
from collections import deque

import numpy as np

from repro.checkpoint.state import capture_state, diff_states, state_fingerprint


class TestScalars:
    def test_scalars_by_repr(self):
        st = capture_state({"i": 7, "f": 0.1, "s": "hi", "b": True, "n": None})
        assert st["$['i']"] == "7"
        assert st["$['f']"] == repr(0.1)
        assert st["$['s']"] == "'hi'"
        assert st["$['b']"] == "True"
        assert st["$['n']"] == "None"

    def test_numpy_scalars_match_python(self):
        assert capture_state(np.int64(5)) == capture_state(5)

    def test_bytes_hashed_by_content(self):
        a = capture_state(b"x" * 1000)
        b = capture_state(bytearray(b"x" * 1000))
        assert a == b
        assert capture_state(b"y" * 1000) != a


class TestContainers:
    def test_set_order_independent(self):
        # Same elements inserted in different orders: identical capture.
        s1 = {f"k{i}" for i in range(20)}
        s2 = set()
        for i in reversed(range(20)):
            s2.add(f"k{i}")
        assert capture_state(s1) == capture_state(s2)

    def test_dict_insertion_order_is_state(self):
        # Iteration order is real simulator state (e.g. retransmit queues).
        # The captured maps are equal *as dicts* (same keys and values);
        # only the fingerprint, which hashes entries in insertion order,
        # tells them apart.
        assert state_fingerprint(
            capture_state({"a": 1, "b": 2})
        ) != state_fingerprint(capture_state({"b": 2, "a": 1}))

    def test_nested_list_deque(self):
        st = capture_state([deque([1, 2]), (3,)])
        assert st["$"] == "<list:2>"
        assert st["$[0]"] == "<deque:2>"
        assert st["$[1]"] == "<tuple:1>"
        assert st["$[0][1]"] == "2"


class TestAliasing:
    def test_shared_object_vs_equal_copies_differ(self):
        # The PR-7 frame-aliasing bug class: two queues referencing ONE
        # mutable object must not fingerprint like two independent copies.
        shared = [0]
        aliased = {"q1": shared, "q2": shared}
        copied = {"q1": [0], "q2": [0]}
        fa = state_fingerprint(capture_state(aliased))
        fc = state_fingerprint(capture_state(copied))
        assert fa != fc
        st = capture_state(aliased)
        assert st["$['q2']"] == "<ref:$['q1']>"

    def test_cycles_terminate(self):
        a = {}
        a["self"] = a
        st = capture_state(a)
        assert st["$['self']"] == "<ref:$>"


class TestRngCapture:
    def test_numpy_generator_mid_sequence(self):
        g1 = np.random.Generator(np.random.PCG64(42))
        g2 = np.random.Generator(np.random.PCG64(42))
        assert capture_state(g1) == capture_state(g2)
        g1.integers(0, 100, size=5)
        assert capture_state(g1) != capture_state(g2)
        g2.integers(0, 100, size=5)
        assert capture_state(g1) == capture_state(g2)

    def test_python_random_mid_sequence(self):
        r1, r2 = random.Random(1), random.Random(1)
        r1.random()
        assert capture_state(r1) != capture_state(r2)
        r2.random()
        assert capture_state(r1) == capture_state(r2)


def _gen(n):
    total = 0
    for i in range(n):
        total += i
        yield total


class TestGenerators:
    def test_suspended_generator_captures_frame(self):
        g1, g2 = _gen(10), _gen(10)
        next(g1), next(g2)
        assert capture_state(g1) == capture_state(g2)
        next(g1)  # g1 advances: its locals (i, total) now differ
        assert capture_state(g1) != capture_state(g2)

    def test_finished_generator(self):
        g = _gen(1)
        list(g)
        assert capture_state(g)["$"] == "<gen:_gen:done>"


class SnapObj:
    def __init__(self):
        self.kept = 1
        self.derived_cache = object()  # would not capture deterministically

    def snapshot_state(self):
        return {"kept": self.kept}


class TestSnapshotProtocol:
    def test_snapshot_state_preferred_over_attrs(self):
        a, b = SnapObj(), SnapObj()
        assert capture_state(a) == capture_state(b)  # cache ignored


class TestFingerprint:
    def test_fingerprint_stable_and_sensitive(self):
        root = {"x": [1, 2, {"y": 0.5}]}
        f1 = state_fingerprint(capture_state(root))
        f2 = state_fingerprint(capture_state({"x": [1, 2, {"y": 0.5}]}))
        assert f1 == f2 and len(f1) == 64
        assert f1 != state_fingerprint(capture_state({"x": [1, 2, {"y": 0.6}]}))

    def test_diff_states_reports_paths(self):
        a = capture_state({"k": 1, "only_a": 2})
        b = capture_state({"k": 9, "only_b": 3})
        diffs = dict((p, (x, y)) for p, x, y in diff_states(a, b))
        assert diffs["$['k']"] == ("1", "9")
        assert diffs["$['only_a']"][1] == "<absent>"
        assert diffs["$['only_b']"][0] == "<absent>"
