"""RNG stream capture: named streams must restore mid-sequence, exactly."""

import numpy as np

from repro.sim.rng import RngRegistry


class TestMidSequenceRestore:
    def test_draw_checkpoint_draw_restore_draw_byte_identical(self):
        """The satellite-3 bug shape: restoring a stream from its *seed*
        replays draws the original already consumed.  Restoring from the
        captured bit-generator state must continue the sequence."""
        rng = RngRegistry(seed=77)
        rng.stream("link-jitter").integers(0, 1 << 30, size=13)  # consume some
        rng.uniform("switch-arb")  # second stream, different position

        snap = rng.snapshot_state()
        # Draws after the checkpoint — the tail we must reproduce.
        expected_jitter = rng.stream("link-jitter").integers(0, 1 << 30, size=8)
        expected_arb = rng.stream("switch-arb").random(size=4)

        rng.restore_state(snap)
        got_jitter = rng.stream("link-jitter").integers(0, 1 << 30, size=8)
        got_arb = rng.stream("switch-arb").random(size=4)
        assert got_jitter.tobytes() == expected_jitter.tobytes()
        assert got_arb.tobytes() == expected_arb.tobytes()

    def test_restore_into_fresh_registry(self):
        a = RngRegistry(seed=5)
        a.stream("s").integers(0, 100, size=7)
        snap = a.snapshot_state()
        tail = a.stream("s").integers(0, 100, size=7)

        b = RngRegistry(seed=0)  # wrong seed on purpose: snapshot wins
        b.restore_state(snap)
        assert b.seed == 5
        assert (
            b.stream("s").integers(0, 100, size=7).tobytes() == tail.tobytes()
        )

    def test_streams_created_after_snapshot_are_dropped_on_restore(self):
        rng = RngRegistry(seed=1)
        rng.stream("early")
        snap = rng.snapshot_state()
        rng.stream("late")
        rng.restore_state(snap)
        assert set(rng._streams) == {"early"}
        # A re-created "late" stream starts from its derived seed again.
        fresh = RngRegistry(seed=1).stream("late").integers(0, 1 << 30, size=4)
        again = rng.stream("late").integers(0, 1 << 30, size=4)
        assert again.tobytes() == fresh.tobytes()

    def test_snapshot_is_not_aliased_to_live_state(self):
        """Advancing a stream after snapshot must not mutate the snapshot."""
        rng = RngRegistry(seed=3)
        rng.stream("s")
        snap = rng.snapshot_state()
        before = repr(snap["streams"]["s"])
        rng.stream("s").integers(0, 100, size=100)
        assert repr(snap["streams"]["s"]) == before
