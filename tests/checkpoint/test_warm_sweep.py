"""Warm-started sweeps: forked continuations bit-identical to cold runs."""

import pytest

from repro.bench.parallel import warm_micro_sweep
from repro.checkpoint.fork import HAVE_FORK

SIZES = (1024, 16384)  # small on purpose: identity, not throughput


class TestWarmSweep:
    @pytest.mark.skipif(not HAVE_FORK, reason="requires os.fork")
    def test_forked_sweep_bit_identical_to_cold(self):
        """The tentpole payoff witness: simulating the shared prefix once
        and forking per sweep point must give byte-for-byte the results of
        rebuilding the prefix for every point."""
        warm = warm_micro_sweep("2Lu-1G", sizes=SIZES, use_fork=True)
        cold = warm_micro_sweep("2Lu-1G", sizes=SIZES, use_fork=False)
        assert warm == cold

    def test_cold_path_deterministic(self):
        a = warm_micro_sweep("1L-1G", sizes=SIZES, use_fork=False)
        b = warm_micro_sweep("1L-1G", sizes=SIZES, use_fork=False)
        assert a == b

    def test_results_cover_requested_sizes(self):
        res = warm_micro_sweep("1L-1G", sizes=SIZES, use_fork=False)
        assert tuple(r.size for r in res) == SIZES
        assert all(r.benchmark == "one-way" for r in res)
        assert all(r.throughput_mbps > 0 for r in res)

    def test_warm_results_not_cached_as_micro_points(self):
        from repro.bench.runner import _micro_cache

        before = dict(_micro_cache)
        warm_micro_sweep("1L-1G", sizes=SIZES, use_fork=False)
        assert _micro_cache == before
