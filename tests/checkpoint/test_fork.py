"""Unit tests for the os.fork-based process checkpointing primitives."""

import pytest

from repro.checkpoint.fork import HAVE_FORK, ForkPoint, fork_map

pytestmark = pytest.mark.skipif(not HAVE_FORK, reason="requires os.fork")


class TestForkMap:
    def test_results_in_order(self):
        assert fork_map([lambda: 1, lambda: "two", lambda: [3]]) == [
            1,
            "two",
            [3],
        ]

    def test_children_inherit_but_do_not_share_state(self):
        # Each child mutates its copy-on-write view; the parent's object
        # and the other children never see it.
        box = {"n": 0}

        def bump():
            box["n"] += 1
            return box["n"]

        assert fork_map([bump, bump, bump]) == [1, 1, 1]
        assert box["n"] == 0

    def test_child_exception_surfaces(self):
        with pytest.raises(RuntimeError, match="ZeroDivisionError"):
            fork_map([lambda: 1 / 0])


class TestForkPoint:
    def test_setup_runs_once_probes_fork_from_it(self):
        calls = []

        def setup():
            calls.append(1)  # child-side; parent's list stays empty
            return {"base": 100, "probes": 0}

        def handler(state, req):
            state["probes"] += 1  # grandchild-local mutation
            return (state["base"] + req, state["probes"])

        with ForkPoint(setup, handler) as fp:
            # Every probe sees probes==0: each grandchild forks from the
            # pristine parked state, not from the previous probe.
            assert fp.call(1) == (101, 1)
            assert fp.call(2) == (102, 1)
            assert fp.call(3) == (103, 1)
        assert calls == []  # setup ran in the child process only

    def test_setup_failure_raises(self):
        def bad_setup():
            raise ValueError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            ForkPoint(bad_setup, lambda s, r: None)

    def test_probe_failure_raises_but_server_survives(self):
        def handler(state, req):
            if req == "bad":
                raise ValueError("probe boom")
            return req

        with ForkPoint(lambda: None, handler) as fp:
            with pytest.raises(RuntimeError, match="probe boom"):
                fp.call("bad")
            assert fp.call("good") == "good"

    def test_call_after_close_rejected(self):
        fp = ForkPoint(lambda: None, lambda s, r: r)
        fp.close()
        fp.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            fp.call(1)
