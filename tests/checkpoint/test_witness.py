"""Determinism witness: run-to-end == pause+checkpoint+finish == restore+finish.

For every cell the protocol is:

* **A** — run the scenario start to finish (the reference),
* **B** — same run paused at T (mid-fault-window when the cell has
  faults), checkpointed with a verified state capture, then finished,
* **C** — the checkpoint *restored* (rebuild + replay to T, fingerprint
  re-verified against the capture) and finished.

All three results must be equal, dataclass-field for dataclass-field —
including the run's own bit-determinism fingerprint.  Any state the
capture misses, any module-level mutable leaking between runs, any clock
snap in the pause path turns into a hard inequality here.

The representative diagonal (one cell per workload, every fault profile
covered) runs in tier-1; the full workload × fault grid is the same code
behind ``REPRO_FULL_WITNESS=1`` (exercised by the checkpoint-smoke CI
job).
"""

import itertools
import os

import pytest

from repro.bench.crash import CrashRun, run_crash
from repro.checkpoint import restore, take_checkpoint
from repro.verify.fuzz import (
    FAULT_PROFILES,
    WORKLOADS,
    FabricRun,
    ScenarioRun,
    fabric_scenario_from_seed,
    run_scenario,
    scenario_from_seed,
)

FULL_GRID = os.environ.get("REPRO_FULL_WITNESS") == "1"


def _pause_time(sc) -> int:
    """Mid-fault-window for faulty cells, an early instant otherwise."""
    if sc.faults:
        return min(f.at_ns for f in sc.faults) + 1_000
    return 1_000_000


def _witness_fuzz(workload: str, profile: str, seed: int) -> None:
    sc = scenario_from_seed(seed, workload, profile)
    res_a = run_scenario(sc)

    run_b = ScenarioRun(sc)
    run_b.run_to(_pause_time(sc))
    ck = take_checkpoint(run_b)
    res_b = run_b.finish()
    assert res_b == res_a, (
        f"{workload}/{profile}: pausing changed the run\n{res_b}\n{res_a}"
    )

    run_c = restore(ck)  # raises CheckpointMismatch on any state drift
    res_c = run_c.finish()
    assert res_c == res_a, (
        f"{workload}/{profile}: restore changed the run\n{res_c}\n{res_a}"
    )


class TestFuzzGridWitness:
    @pytest.mark.parametrize(
        "workload,profile",
        [
            # One cell per workload; all five fault profiles covered.
            ("bulk", "none"),
            ("small", "outage"),
            ("scatter", "flap"),
            ("read", "ber"),
            ("mixed", "chaos"),
        ],
    )
    def test_representative_cells(self, workload, profile):
        _witness_fuzz(workload, profile, seed=31)

    @pytest.mark.skipif(
        not FULL_GRID, reason="full grid behind REPRO_FULL_WITNESS=1"
    )
    @pytest.mark.parametrize(
        "workload,profile", list(itertools.product(WORKLOADS, FAULT_PROFILES))
    )
    def test_full_grid(self, workload, profile):
        _witness_fuzz(workload, profile, seed=31)

    def test_checkpoint_inside_fault_window(self):
        """T lands between a chaos cell's first and last fault."""
        sc = scenario_from_seed(3, "mixed", "chaos")
        starts = sorted(f.at_ns for f in sc.faults)
        assert len(starts) >= 2, "seed 3 chaos no longer draws several faults"
        t = starts[0] + 1_000
        assert t < starts[-1], "pause no longer inside the fault window"
        res_a = run_scenario(sc)
        run_b = ScenarioRun(sc)
        run_b.run_to(t)
        ck = take_checkpoint(run_b)
        assert ck.time_ns <= t
        assert run_b.finish() == res_a
        assert restore(ck).finish() == res_a


class TestCrashWitness:
    def test_checkpoint_inside_crash_window(self):
        """T = 12 ms sits between the crash (10 ms) and restart (15 ms)."""
        res_a = run_crash()

        run_b = CrashRun()
        run_b.run_to(12_000_000)
        ck = take_checkpoint(run_b)
        assert run_b.finish() == res_a

        assert restore(ck).finish() == res_a


class TestFabricWitness:
    def test_trunk_churn_cell(self):
        """Seed 7: leaf-spine with trunk drain/fail events mid-run."""
        sc = fabric_scenario_from_seed(7)
        assert sc.trunk_events
        res_a = FabricRun(7).finish()

        run_b = FabricRun(7)
        run_b.run_to(min(ev[0] for ev in sc.trunk_events) + 1_000)
        ck = take_checkpoint(run_b)
        assert run_b.finish() == res_a

        assert restore(ck).finish() == res_a
