"""Determinism witness: run-to-end == pause+checkpoint+finish == restore+finish.

For every cell the protocol is:

* **A** — run the scenario start to finish (the reference),
* **B** — same run paused at T (mid-fault-window when the cell has
  faults), checkpointed with a verified state capture, then finished,
* **C** — the checkpoint *restored* (rebuild + replay to T, fingerprint
  re-verified against the capture) and finished.

All three results must be equal, dataclass-field for dataclass-field —
including the run's own bit-determinism fingerprint.  Any state the
capture misses, any module-level mutable leaking between runs, any clock
snap in the pause path turns into a hard inequality here.

The representative diagonal (one cell per workload, every fault profile
covered) runs in tier-1; the full workload × fault grid is the same code
behind ``REPRO_FULL_WITNESS=1`` (exercised by the checkpoint-smoke CI
job).
"""

import itertools
import os

import pytest

from repro.bench.crash import CrashRun, run_crash
from repro.bench.serve import ServeRun
from repro.checkpoint import restore, take_checkpoint
from repro.serve import ArrivalSpec, ServerSpec
from repro.verify.fuzz import (
    FAULT_PROFILES,
    WORKLOADS,
    FabricRun,
    ScenarioRun,
    fabric_scenario_from_seed,
    run_scenario,
    scenario_from_seed,
)

FULL_GRID = os.environ.get("REPRO_FULL_WITNESS") == "1"


def _pause_time(sc) -> int:
    """Mid-fault-window for faulty cells, an early instant otherwise."""
    if sc.faults:
        return min(f.at_ns for f in sc.faults) + 1_000
    return 1_000_000


def _witness_fuzz(workload: str, profile: str, seed: int) -> None:
    sc = scenario_from_seed(seed, workload, profile)
    res_a = run_scenario(sc)

    run_b = ScenarioRun(sc)
    run_b.run_to(_pause_time(sc))
    ck = take_checkpoint(run_b)
    res_b = run_b.finish()
    assert res_b == res_a, (
        f"{workload}/{profile}: pausing changed the run\n{res_b}\n{res_a}"
    )

    run_c = restore(ck)  # raises CheckpointMismatch on any state drift
    res_c = run_c.finish()
    assert res_c == res_a, (
        f"{workload}/{profile}: restore changed the run\n{res_c}\n{res_a}"
    )


class TestFuzzGridWitness:
    @pytest.mark.parametrize(
        "workload,profile",
        [
            # One cell per workload; all five fault profiles covered.
            ("bulk", "none"),
            ("small", "outage"),
            ("scatter", "flap"),
            ("read", "ber"),
            ("mixed", "chaos"),
        ],
    )
    def test_representative_cells(self, workload, profile):
        _witness_fuzz(workload, profile, seed=31)

    @pytest.mark.skipif(
        not FULL_GRID, reason="full grid behind REPRO_FULL_WITNESS=1"
    )
    @pytest.mark.parametrize(
        "workload,profile", list(itertools.product(WORKLOADS, FAULT_PROFILES))
    )
    def test_full_grid(self, workload, profile):
        _witness_fuzz(workload, profile, seed=31)

    def test_checkpoint_inside_fault_window(self):
        """T lands between a chaos cell's first and last fault."""
        sc = scenario_from_seed(3, "mixed", "chaos")
        starts = sorted(f.at_ns for f in sc.faults)
        assert len(starts) >= 2, "seed 3 chaos no longer draws several faults"
        t = starts[0] + 1_000
        assert t < starts[-1], "pause no longer inside the fault window"
        res_a = run_scenario(sc)
        run_b = ScenarioRun(sc)
        run_b.run_to(t)
        ck = take_checkpoint(run_b)
        assert ck.time_ns <= t
        assert run_b.finish() == res_a
        assert restore(ck).finish() == res_a


class TestCrashWitness:
    def test_checkpoint_inside_crash_window(self):
        """T = 12 ms sits between the crash (10 ms) and restart (15 ms)."""
        res_a = run_crash()

        run_b = CrashRun()
        run_b.run_to(12_000_000)
        ck = take_checkpoint(run_b)
        assert run_b.finish() == res_a

        assert restore(ck).finish() == res_a


class TestFabricWitness:
    def test_trunk_churn_cell(self):
        """Seed 7: leaf-spine with trunk drain/fail events mid-run."""
        sc = fabric_scenario_from_seed(7)
        assert sc.trunk_events
        res_a = FabricRun(7).finish()

        run_b = FabricRun(7)
        run_b.run_to(min(ev[0] for ev in sc.trunk_events) + 1_000)
        ck = take_checkpoint(run_b)
        assert run_b.finish() == res_a

        assert restore(ck).finish() == res_a


class TestServeWitness:
    """Checkpoint mid-spike == run-to-end for the serving layer.

    The pause instant sits inside the crash window with arrival batches
    pending at both clients, so the capture must carry the arrival
    sources' pre-drawn batch state, the balancer's liveness view, the
    journal, and every histogram bucket for the equality to hold.
    """

    RECIPE = dict(
        config="1L-10G",
        n_clients=2,
        n_servers=2,
        policy="least-outstanding",
        arrival=ArrivalSpec(kind="poisson", rate_rps=40_000, batch=64),
        server=ServerSpec(queue_cap=64, workers=4, service=("fixed", 15_000)),
        duration_ns=30_000_000,
        window_ns=5_000_000,
        seed=14,
        crash_server=3,
        crash_ns=8_000_000,
        restart_delay_ns=4_000_000,
    )

    def test_checkpoint_inside_crash_window(self):
        """T = 10 ms sits between the crash (8 ms) and restart (12 ms)."""
        res_a = ServeRun(**self.RECIPE).finish()

        run_b = ServeRun(**self.RECIPE)
        run_b.run_to(10_000_000)
        # The pause caught live open-loop state, not a quiesced lull.
        assert run_b.runtime.arrivals_armed
        assert any(
            s.pending_batch > 0 for s in run_b.runtime.sources.values()
        ), "no arrival batch pending at the pause instant"
        ck = take_checkpoint(run_b)
        assert ck.kind == "serve"
        res_b = run_b.finish()
        assert res_b == res_a, "pausing changed the serving run"

        res_c = restore(ck).finish()  # raises CheckpointMismatch on drift
        assert res_c == res_a, "restore changed the serving run"
