"""Restore semantics: double restore, in-process isolation, mismatch errors."""

import pytest

from repro.checkpoint import (
    FORMAT_VERSION,
    CheckpointMismatch,
    restore,
    take_checkpoint,
)
from repro.verify.fuzz import ScenarioRun, run_scenario, scenario_from_seed


def _paused(sc, t):
    run = ScenarioRun(sc)
    run.run_to(t)
    return run


class TestRestoreTwice:
    def test_two_restores_in_one_process_are_identical(self):
        """Regression for module-level mutable state escaping snapshots.

        When frame-uid / connection-id counters were process globals, the
        second restored simulator in a process continued the first one's
        numbering and diverged.  Both restores must now verify their
        fingerprint and finish with identical results — with both live
        simulators coexisting in this process.
        """
        sc = scenario_from_seed(9, "mixed", "outage")
        reference = run_scenario(sc)
        ck = take_checkpoint(_paused(sc, 1_500_000))

        first = restore(ck)  # fingerprint-verified
        second = restore(ck)  # again, while `first` is still live
        # Interleave: step the second before finishing the first, so any
        # shared hidden state between the two simulators would cross-talk.
        second.run_to(ck.time_ns + 500_000)
        assert first.finish() == reference
        assert second.finish() == reference

    def test_interleaved_fresh_runs_do_not_interfere(self):
        sc_x = scenario_from_seed(9, "mixed", "outage")
        sc_y = scenario_from_seed(10, "bulk", "none")
        ref_x = run_scenario(sc_x)
        ref_y = run_scenario(sc_y)
        run_x, run_y = ScenarioRun(sc_x), ScenarioRun(sc_y)
        run_x.run_to(1_000_000)
        run_y.run_to(1_000_000)
        run_x.run_to(2_000_000)
        assert run_y.finish() == ref_y
        assert run_x.finish() == ref_x


class TestRestoreErrors:
    def test_tampered_fingerprint_raises_with_paths(self):
        sc = scenario_from_seed(9, "mixed", "outage")
        ck = take_checkpoint(_paused(sc, 1_500_000))
        ck.fingerprint = "0" * 64
        # Also tamper one captured leaf so the diff names it.
        path = next(iter(ck.state))
        ck.state = {**ck.state, path: "<tampered>"}
        with pytest.raises(CheckpointMismatch) as exc:
            restore(ck)
        assert any(p == path for p, _, _ in exc.value.diffs)

    def test_format_version_guard(self):
        sc = scenario_from_seed(9, "mixed", "outage")
        ck = take_checkpoint(_paused(sc, 1_500_000))
        ck.format_version = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format"):
            restore(ck)

    def test_unknown_run_type_rejected(self):
        with pytest.raises(TypeError):
            take_checkpoint(object())


class TestOverrides:
    def test_trace_override_skips_verify_and_replays(self):
        sc = scenario_from_seed(9, "mixed", "outage")
        reference = run_scenario(sc, trace=True)
        ck = take_checkpoint(_paused(sc, 1_500_000))
        traced = restore(ck, trace=True)  # capture shape differs: no verify
        assert traced.trace
        res = traced.finish()
        # The traced replay sees the identical frame sequence.
        assert res.fingerprint == reference.fingerprint
