"""Unit tests for CPU accounting, kernel dispatch, and node assembly."""

import pytest

from repro.ethernet import Frame, LinkParams, MultiEdgeHeader, connect_back_to_back
from repro.host import Cpu, CpuAccounting, HostParams, Node
from repro.sim import RngRegistry, Simulator


def test_cpu_run_charges_tag():
    sim = Simulator()
    acc = CpuAccounting()
    cpu = Cpu(sim, 0, acc)

    def body():
        yield from cpu.run(1000, "app")
        yield from cpu.run(500, "protocol.recv")

    proc = sim.process(body())
    sim.run_until_done(proc)
    assert acc.by_tag["app"] == 1000
    assert acc.by_tag["protocol.recv"] == 500
    assert acc.total("protocol") == 500
    assert acc.total() == 1500


def test_cpu_run_zero_duration_is_noop():
    sim = Simulator()
    acc = CpuAccounting()
    cpu = Cpu(sim, 0, acc)

    def body():
        yield from cpu.run(0, "app")
        yield 10

    sim.run_until_done(sim.process(body()))
    assert acc.total() == 0


def test_cpu_serializes_two_processes():
    sim = Simulator()
    acc = CpuAccounting()
    cpu = Cpu(sim, 0, acc)
    ends = []

    def body(tag):
        yield from cpu.run(100, tag)
        ends.append(sim.now)

    sim.process(body("a"))
    sim.process(body("b"))
    sim.run()
    assert ends == [100, 200]


def test_accounting_epoch():
    acc = CpuAccounting()
    acc.charge("app", 100)
    acc.mark_epoch()
    acc.charge("app", 50)
    acc.charge("dsm", 25)
    assert acc.since_epoch() == {"app": 50, "dsm": 25}


def test_node_has_cpus_nics_memory():
    sim = Simulator()
    node = Node(sim, node_id=3)
    assert len(node.cpus) == 2
    assert node.app_cpu is node.cpus[0]
    assert node.protocol_cpu is node.cpus[1]
    assert len(node.nics) == 1
    assert node.memory.alloc(10) > 0


def test_host_params_validation():
    with pytest.raises(ValueError):
        HostParams(cpus=0)


def test_memcpy_cost_model():
    p = HostParams()
    assert p.memcpy_ns(0) == 0
    assert p.memcpy_ns(1024) == p.memcpy_base_ns + p.memcpy_ns_per_kb
    assert p.memcpy_ns(4096) > p.memcpy_ns(1024)


class RecordingClient:
    """Driver client that records frames and charges a fixed CPU cost."""

    def __init__(self, cost=100):
        self.frames = []
        self.completions = []
        self.cost = cost

    def handle_frame(self, frame, cpu):
        yield from cpu.run(self.cost, "protocol.recv")
        self.frames.append(frame)

    def handle_tx_completions(self, nic, count, cpu):
        yield from cpu.run(self.cost, "protocol.send")
        self.completions.append(count)


def make_wired_pair(sim, rng=None):
    rng = rng or RngRegistry(0)
    a = Node(sim, 0, rng=rng, name="a")
    b = Node(sim, 1, rng=rng, name="b")
    connect_back_to_back(
        sim, a.nics[0], b.nics[0], LinkParams(propagation_ns=100), rng
    )
    return a, b


def frame_to(b_node, n=100, seq=0):
    return Frame(
        src_mac=0,
        dst_mac=b_node.nics[0].mac,
        header=MultiEdgeHeader(payload_length=n, seq=seq),
        payload=bytes(n),
    )


def test_kernel_delivers_frames_to_client():
    sim = Simulator()
    a, b = make_wired_pair(sim)
    client = RecordingClient()
    b.kernel.attach_client(client)
    for seq in range(10):
        a.nics[0].transmit(frame_to(b, seq=seq))
    sim.run()
    assert len(client.frames) == 10
    assert [f.header.seq for f in client.frames] == list(range(10))
    # Interrupt and protocol time were charged.
    assert b.accounting.total("interrupt") > 0
    assert b.accounting.total("protocol.recv") == 1000


def test_kernel_coalesces_interrupts_under_load():
    sim = Simulator()
    a, b = make_wired_pair(sim)
    client = RecordingClient(cost=2000)
    b.kernel.attach_client(client)
    n = 64
    for seq in range(n):
        a.nics[0].transmit(frame_to(b, seq=seq))
    sim.run()
    assert len(client.frames) == n
    # Far fewer interrupts than frames: polling + masking coalesces.
    assert b.kernel.irqs_handled < n / 2


def test_kernel_tx_completions_reach_sender_client():
    sim = Simulator()
    a, b = make_wired_pair(sim)
    client_a = RecordingClient()
    a.kernel.attach_client(client_a)
    b.kernel.attach_client(RecordingClient())
    for seq in range(5):
        a.nics[0].transmit(frame_to(b, seq=seq))
    sim.run()
    assert sum(client_a.completions) == 5


def test_kernel_kick_wakes_kthread_without_irq():
    sim = Simulator()
    node = Node(sim, 0, name="solo")
    client = RecordingClient()
    node.kernel.attach_client(client)
    before = node.kernel.kthread_wakeups
    node.kernel.kick()
    sim.run()
    assert node.kernel.kthread_wakeups == before + 1


def test_node_protocol_cpu_time_and_utilization():
    sim = Simulator()
    a, b = make_wired_pair(sim)
    b.kernel.attach_client(RecordingClient(cost=1000))
    a.kernel.attach_client(RecordingClient(cost=0))
    for seq in range(20):
        a.nics[0].transmit(frame_to(b, seq=seq))
    sim.run()
    elapsed = sim.now
    assert b.protocol_cpu_time() >= 20_000
    assert 0.0 < b.protocol_utilization(elapsed) <= 2.0
    assert 0.0 < b.cpu_utilization(elapsed) <= 2.0


def test_interrupts_reenabled_after_drain():
    sim = Simulator()
    a, b = make_wired_pair(sim)
    b.kernel.attach_client(RecordingClient())
    a.kernel.attach_client(RecordingClient())
    a.nics[0].transmit(frame_to(b))
    sim.run()
    assert b.nics[0].interrupts_enabled
    # A second frame still gets processed (no lost-wakeup race).
    a.nics[0].transmit(frame_to(b, seq=1))
    sim.run()
    assert b.nics[0].interrupts_enabled
