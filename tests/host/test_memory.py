"""Unit tests for the virtual memory model."""

import numpy as np
import pytest

from repro.host import MemoryFault, VirtualMemory


def test_alloc_returns_distinct_addresses():
    vm = VirtualMemory()
    a = vm.alloc(100)
    b = vm.alloc(100)
    assert a != b
    assert b >= a + 100


def test_write_read_roundtrip():
    vm = VirtualMemory()
    addr = vm.alloc(64)
    vm.write(addr, b"hello world")
    assert vm.read(addr, 11) == b"hello world"


def test_write_read_at_offset():
    vm = VirtualMemory()
    addr = vm.alloc(1000)
    vm.write(addr + 500, b"xyz")
    assert vm.read(addr + 500, 3) == b"xyz"
    assert vm.read(addr, 3) == b"\x00\x00\x00"


def test_alloc_zero_rejected():
    vm = VirtualMemory()
    with pytest.raises(ValueError):
        vm.alloc(0)


def test_read_unmapped_faults():
    vm = VirtualMemory()
    vm.alloc(10)
    with pytest.raises(MemoryFault):
        vm.read(0x10, 4)


def test_access_past_end_faults():
    vm = VirtualMemory()
    addr = vm.alloc(10)
    with pytest.raises(MemoryFault):
        vm.read(addr + 8, 4)
    with pytest.raises(MemoryFault):
        vm.write(addr + 8, b"abcd")


def test_guard_gap_between_allocations():
    vm = VirtualMemory()
    a = vm.alloc(10)
    vm.alloc(10)
    # One byte past allocation `a` must fault, not hit the next buffer.
    with pytest.raises(MemoryFault):
        vm.read(a + 10, 1)


def test_view_is_zero_copy():
    vm = VirtualMemory()
    addr = vm.alloc(16)
    view = vm.view(addr, 16)
    view[0] = 0xAB
    assert vm.read(addr, 1) == b"\xab"


def test_ndarray_typed_view():
    vm = VirtualMemory()
    addr = vm.alloc(8 * 10)
    arr = vm.ndarray(addr, (10,), np.float64)
    arr[:] = np.arange(10.0)
    again = vm.ndarray(addr, (10,), np.float64)
    assert np.array_equal(again, np.arange(10.0))


def test_write_accepts_numpy_array():
    vm = VirtualMemory()
    addr = vm.alloc(4)
    vm.write(addr, np.array([1, 2, 3, 4], dtype=np.uint8))
    assert vm.read(addr, 4) == b"\x01\x02\x03\x04"


def test_allocated_bytes():
    vm = VirtualMemory()
    vm.alloc(100)
    vm.alloc(50)
    assert vm.allocated_bytes == 150


def test_many_allocations_lookup():
    vm = VirtualMemory()
    addrs = [vm.alloc(32) for _ in range(200)]
    for i, addr in enumerate(addrs):
        vm.write(addr, bytes([i % 256] * 4))
    for i, addr in enumerate(addrs):
        assert vm.read(addr, 4) == bytes([i % 256] * 4)
