"""Additional host-layer coverage: NIC parameter factories, kernel batching."""

import pytest

from repro.ethernet import Frame, LinkParams, MultiEdgeHeader, connect_back_to_back
from repro.host import HostParams, Node, myri10g_params, tigon3_params
from repro.sim import RngRegistry, Simulator


class TestNicFactories:
    def test_tigon3_is_1g(self):
        p = tigon3_params()
        assert p.speed_bps == 1e9
        assert not p.unmaskable_tx_irq

    def test_myri10g_is_10g_with_unmaskable_tx(self):
        p = myri10g_params()
        assert p.speed_bps == 10e9
        assert p.unmaskable_tx_irq

    def test_factory_overrides(self):
        p = tigon3_params(tx_ring_frames=64, coalesce_frames=2)
        assert p.tx_ring_frames == 64
        assert p.coalesce_frames == 2
        # Defaults untouched.
        assert tigon3_params().tx_ring_frames == 512

    def test_memcpy_monotonic(self):
        hp = HostParams()
        costs = [hp.memcpy_ns(n) for n in (1, 64, 1024, 4096, 65536)]
        assert costs == sorted(costs)
        assert costs[0] > 0


class SlowClient:
    """Client whose per-frame cost exceeds the inter-arrival gap."""

    def __init__(self, cost):
        self.cost = cost
        self.frames = []
        self.batches = []

    def handle_frame(self, frame, cpu):
        yield from cpu.run(self.cost, "protocol.recv")
        self.frames.append(frame)

    def handle_tx_completions(self, nic, count, cpu):
        self.batches.append(count)
        yield from cpu.run(100, "protocol.send")


class TestKernelBatching:
    def _pair(self, sim):
        rng = RngRegistry(0)
        a = Node(sim, 0, rng=rng, name="a")
        b = Node(sim, 1, rng=rng, name="b")
        connect_back_to_back(
            sim, a.nics[0], b.nics[0], LinkParams(propagation_ns=100), rng
        )
        return a, b

    def test_poll_batch_caps_harvest(self):
        from repro.host.kernel import POLL_BATCH

        sim = Simulator()
        a, b = self._pair(sim)
        client = SlowClient(cost=100)
        b.kernel.attach_client(client)
        a.kernel.attach_client(SlowClient(cost=0))
        n = POLL_BATCH + 20
        for seq in range(n):
            a.nics[0].transmit(
                Frame(
                    src_mac=a.nics[0].mac,
                    dst_mac=b.nics[0].mac,
                    header=MultiEdgeHeader(seq=seq, payload_length=32),
                    payload=bytes(32),
                )
            )
        sim.run()
        assert len(client.frames) == n

    def test_kthread_single_wakeup_for_burst(self):
        sim = Simulator()
        a, b = self._pair(sim)
        client = SlowClient(cost=5000)  # slower than arrival rate
        b.kernel.attach_client(client)
        a.kernel.attach_client(SlowClient(cost=0))
        for seq in range(32):
            a.nics[0].transmit(
                Frame(
                    src_mac=a.nics[0].mac,
                    dst_mac=b.nics[0].mac,
                    header=MultiEdgeHeader(seq=seq, payload_length=32),
                    payload=bytes(32),
                )
            )
        sim.run()
        # Once awake, the kthread polls in a loop; bursts need few wakeups.
        assert b.kernel.kthread_wakeups <= 3
        assert len(client.frames) == 32

    def test_tx_completion_batches_accumulate(self):
        sim = Simulator()
        a, b = self._pair(sim)
        client_a = SlowClient(cost=0)
        a.kernel.attach_client(client_a)
        b.kernel.attach_client(SlowClient(cost=0))
        for seq in range(24):
            a.nics[0].transmit(
                Frame(
                    src_mac=a.nics[0].mac,
                    dst_mac=b.nics[0].mac,
                    header=MultiEdgeHeader(seq=seq, payload_length=32),
                    payload=bytes(32),
                )
            )
        sim.run()
        assert sum(client_a.batches) == 24

    def test_protocol_cpu_epoch_reset(self):
        sim = Simulator()
        a, b = self._pair(sim)
        client = SlowClient(cost=1000)
        b.kernel.attach_client(client)
        a.kernel.attach_client(SlowClient(cost=0))
        for seq in range(10):
            a.nics[0].transmit(
                Frame(
                    src_mac=a.nics[0].mac,
                    dst_mac=b.nics[0].mac,
                    header=MultiEdgeHeader(seq=seq, payload_length=32),
                    payload=bytes(32),
                )
            )
        sim.run()
        assert b.protocol_cpu_time() > 0
        b.reset_accounting()
        assert b.protocol_cpu_time() == 0
        assert b.protocol_cpu_time(since_epoch=False) > 0
