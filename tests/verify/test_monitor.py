"""Tests for the runtime invariant monitor (repro.verify)."""

import types

import pytest

from repro.bench.cluster import make_cluster
from repro.verify import InvariantMonitor, InvariantViolation


def _run_write(cluster, handle, src, dst, size):
    def proc():
        h = yield from handle.rdma_write(src, dst, size)
        yield from h.wait()

    cluster.sim.run_until_done(cluster.sim.process(proc()), limit=10**10)
    cluster.sim.run()


def _small_cluster(config="1L-1G", seed=1):
    c = make_cluster(config, nodes=2, seed=seed)
    a, b = c.connect(0, 1)
    src = c.nodes[0].memory.alloc(64 * 1024)
    dst = c.nodes[1].memory.alloc(64 * 1024)
    return c, a, b, src, dst


class TestOffByDefault:
    def test_no_monitor_unless_attached(self):
        c, a, b, src, dst = _small_cluster()
        assert a.conn.monitor is None and b.conn.monitor is None
        for node in c.nodes:
            for nic in node.nics:
                assert nic.monitor is None
        _run_write(c, a, src, dst, 4096)  # runs fine without a monitor

    def test_attach_wires_everything(self):
        c, a, b, src, dst = _small_cluster()
        mon = InvariantMonitor.attach(c)
        assert a.conn.monitor is mon and b.conn.monitor is mon
        for node in c.nodes:
            for nic in node.nics:
                assert nic.monitor is mon
        _run_write(c, a, src, dst, 16 * 1024)
        mon.final_check()
        assert mon.checks_run > 0 and mon.ok

    def test_detach_unwires(self):
        c, a, b, src, dst = _small_cluster()
        mon = InvariantMonitor.attach(c)
        mon.detach()
        assert a.conn.monitor is None
        for node in c.nodes:
            for nic in node.nics:
                assert nic.monitor is None


class TestCleanRuns:
    @pytest.mark.parametrize("config", ["1L-1G", "1L-10G", "2L-1G", "2Lu-1G"])
    def test_bulk_write_clean(self, config):
        c, a, b, src, dst = _small_cluster(config)
        mon = InvariantMonitor.attach(c)
        _run_write(c, a, src, dst, 64 * 1024)
        mon.final_check()
        assert mon.ok

    def test_edge_control_clean(self):
        c = make_cluster("2Lu-1G", nodes=2, seed=3)
        c.connect(0, 1)
        m1, m2 = c.enable_edge_control(0, 1)
        mon = InvariantMonitor.attach(c)
        a, _ = c.connect(0, 1)
        src = c.nodes[0].memory.alloc(64 * 1024)
        dst = c.nodes[1].memory.alloc(64 * 1024)

        def proc():
            h = yield from a.rdma_write(src, dst, 64 * 1024)
            yield from h.wait()

        # Probe loops keep the event queue non-empty; stop them before the
        # final drain or sim.run() never returns.
        c.sim.run_until_done(c.sim.process(proc()), limit=10**10)
        m1.stop()
        m2.stop()
        c.sim.run()
        mon.final_check()
        assert mon.ok


class TestPlantedCorruptions:
    def _completed_run(self):
        c, a, b, src, dst = _small_cluster()
        mon = InvariantMonitor.attach(c)
        _run_write(c, a, src, dst, 8192)
        return c, a, mon

    def test_catches_sent_counter_drift(self):
        _, a, mon = self._completed_run()
        a.conn.stats.data_frames_sent += 1
        with pytest.raises(InvariantViolation, match="sent-vs-seq"):
            mon.final_check()

    def test_catches_freed_seq_resurrection(self):
        _, a, mon = self._completed_run()
        rec = types.SimpleNamespace(
            frame=types.SimpleNamespace(header=types.SimpleNamespace(seq=0)),
            retransmits=0,
        )
        a.conn.window.inflight[0] = rec
        with pytest.raises(InvariantViolation):
            mon.final_check()

    def test_catches_cpu_charge_drift(self):
        _, a, mon = self._completed_run()
        a.conn.stats.pump_charged_ns += 1
        with pytest.raises(InvariantViolation, match="pump-cpu"):
            mon.final_check()

    def test_catches_negative_deficit(self):
        c = make_cluster("2Lu-1G", nodes=2, seed=1)
        a, _ = c.connect(0, 1)
        mon = InvariantMonitor.attach(c)
        src = c.nodes[0].memory.alloc(8192)
        dst = c.nodes[1].memory.alloc(8192)
        _run_write(c, a, src, dst, 8192)
        a.conn.striping._assigned_bytes[0] = -5
        with pytest.raises(InvariantViolation, match="deficit"):
            mon.final_check()

    def test_catches_cum_ack_regression(self):
        _, a, mon = self._completed_run()
        tracker = a.conn.tracker
        tracker.expected -= 1
        with pytest.raises(InvariantViolation):
            mon.final_check()

    def test_catches_illegal_edge_transition(self):
        from repro.control.detector import EdgeState

        c = make_cluster("2Lu-1G", nodes=2, seed=1)
        c.connect(0, 1)
        mgr, _ = c.enable_edge_control(0, 1)
        mon = InvariantMonitor.attach(c)
        with pytest.raises(InvariantViolation, match="edge"):
            mon.on_edge_transition(
                mgr, 0, EdgeState.DOWN, EdgeState.SUSPECT, "bogus"
            )

    def test_collect_mode_gathers_instead_of_raising(self):
        c, a, b, src, dst = _small_cluster()
        mon = InvariantMonitor.attach(c, collect=True)
        _run_write(c, a, src, dst, 8192)
        a.conn.stats.data_frames_sent += 1
        mon.final_check()
        assert not mon.ok
        assert any("sent-vs-seq" in str(v) for v in mon.violations)
