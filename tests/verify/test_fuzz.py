"""Tests for the deterministic fuzz harness (repro.verify.fuzz)."""

from dataclasses import replace

from repro.verify.fuzz import (
    FAULT_PROFILES,
    WORKLOADS,
    OpSpec,
    run_scenario,
    scenario_from_seed,
    shrink_scenario,
)


class TestScenarioGeneration:
    def test_same_seed_same_scenario(self):
        for seed in (0, 1, 99):
            assert scenario_from_seed(seed) == scenario_from_seed(seed)

    def test_constrained_generation(self):
        sc = scenario_from_seed(7, "scatter", "outage")
        assert sc.workload == "scatter" and sc.fault_profile == "outage"
        assert all(op.kind == "scatter" for op in sc.ops)

    def test_grid_axes_cover(self):
        assert len(WORKLOADS) == 5 and len(FAULT_PROFILES) == 5


class TestRunScenario:
    def test_clean_run_reports_checks(self):
        res = run_scenario(scenario_from_seed(1))
        assert res.ok, res.failure
        assert res.checks > 0
        assert len(res.fingerprint) == 64

    def test_bit_determinism_with_trace(self):
        sc = scenario_from_seed(11, "mixed", "outage")
        first = run_scenario(sc, trace=True)
        second = run_scenario(sc, trace=True)
        assert first.ok, first.failure
        assert first.fingerprint == second.fingerprint
        assert first.elapsed_ns == second.elapsed_ns

    def test_monitor_optional(self):
        sc = scenario_from_seed(2)
        res = run_scenario(sc, use_monitor=False)
        assert res.ok and res.checks == 0


class TestFingerprintRegression:
    # Pinned fingerprints from before the crash-recovery subsystem landed.
    # The no-crash path must stay bit-identical: new crash fuzz streams
    # draw from their own RNGs, frame incarnation stamping is gated on
    # recovery being enabled, and no ConnectionStats field was added.
    PINNED = {
        0: "9602b13563a225033d17f44a8a7f6a000f1b3aead3b7963aa5c0ca5e7e52a5dd",
        1: "7170900315165228ba1ed4ae8da7bb44c21b88c9ee64e60bb7f938c2b8699302",
        7: "a35296563d99515e316e117ef054870dd6e0b7dc34ebec061a8eb1fb1839ac23",
        42: "54c8bf57395628440066e52fa19dc508abb7d9180530e7c1ab85d0bfff4ca7c4",
        123: "8e62a7d62f364e104b71b44a396848168507bac1306179dbe03f2a1a9440fea0",
    }

    def test_no_crash_fingerprints_unchanged(self):
        for seed, expected in self.PINNED.items():
            res = run_scenario(scenario_from_seed(seed))
            assert res.ok, f"seed {seed}: {res.failure}"
            assert res.fingerprint == expected, (
                f"seed {seed} fingerprint drifted: {res.fingerprint}"
            )


class TestShrinker:
    def test_reduces_to_minimal_failing_case(self):
        sc = scenario_from_seed(5, "small", "chaos")
        assert len(sc.ops) > 3 and len(sc.faults) >= 1

        def fails(s):
            return len(s.ops) >= 3 and len(s.faults) >= 1

        small = shrink_scenario(sc, fails=fails)
        assert len(small.ops) == 3 and len(small.faults) == 1

    def test_rejects_passing_scenario(self):
        sc = scenario_from_seed(5, "small", "none")
        try:
            shrink_scenario(sc, fails=lambda s: False)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError for a passing scenario")


class TestReadFenceRegression:
    def test_cross_fenced_read_scenario_passes(self):
        """The minimal reproducer the shrinker produced for the read-fence
        deadlock (seed 0, read/none); it must now run to completion."""
        base = scenario_from_seed(0, "read", "none")
        sc = replace(
            base,
            nodes=2,
            ops=(
                OpSpec(src=1, dst=0, kind="read", size=4271, wait=True),
                OpSpec(src=0, dst=1, kind="read", size=7202, wait=True),
                OpSpec(src=0, dst=1, kind="read", size=15862, flags=4, wait=True),
                OpSpec(src=1, dst=0, kind="read", size=9061, flags=4, wait=False),
            ),
        )
        res = run_scenario(sc)
        assert res.ok, res.failure


class TestFabricFuzz:
    def test_scenario_derivation_is_deterministic(self):
        from repro.verify.fuzz import fabric_scenario_from_seed

        assert fabric_scenario_from_seed(9) == fabric_scenario_from_seed(9)
        assert fabric_scenario_from_seed(9) != fabric_scenario_from_seed(10)

    def test_scenarios_cover_both_topologies(self):
        from repro.verify.fuzz import fabric_scenario_from_seed

        kinds = {fabric_scenario_from_seed(s).topology for s in range(16)}
        assert kinds == {"leaf-spine", "fat-tree"}

    def test_scenarios_hold_routing_invariants(self):
        from repro.verify.fuzz import run_fabric_scenario

        for seed in range(4):
            res = run_fabric_scenario(seed)
            assert res.ok, (
                f"seed {seed}: {res.violations or 'data loss'} "
                f"({res.messages_received}/{res.flows} messages)"
            )

    def test_trunk_churn_seed_repins_and_survives(self):
        """Seed 7 draws a leaf-spine with two trunk events; the run must
        re-pin flows around the churn and still deliver every byte."""
        from repro.verify.fuzz import fabric_scenario_from_seed, run_fabric_scenario

        sc = fabric_scenario_from_seed(7)
        assert sc.trunk_events, "seed 7 no longer draws trunk events"
        res = run_fabric_scenario(7)
        assert res.ok and res.repins > 0


class TestServeFuzz:
    """Randomized serving scenarios: conservation + invariants, pinned."""

    # seed -> fingerprint at the PR that introduced repro.serve.
    PINNED = {
        0: "3284f4b7f2089d687071cc62309a0a478dd1801d43a2a05f808bce9f1f37e848",
        1: "120bc9d1f3e8bc575b1b52b488ca3e830ce24f6bf30e3735a72518238d95a0af",
        5: "a553532c5f7e49ecaaccd6bf860f83ed0a447d41d657d453fd0765c9123e58dc",
    }

    def test_request_conservation_across_seeds(self):
        from repro.verify.fuzz import run_serve_scenario

        for seed in range(4):
            res = run_serve_scenario(seed)
            assert res.ok, f"seed {seed}: {res.violations}"
            assert res.generated == (
                res.completed + res.shed + res.failed
            ), f"seed {seed} lost requests"

    def test_crash_seed_replays(self):
        """Seed 1 draws a crash profile; the journal must replay."""
        from repro.verify.fuzz import run_serve_scenario

        res = run_serve_scenario(1)
        assert res.fault_profile == "crash", (
            "seed 1 no longer draws a crash profile"
        )
        assert res.ok and res.replayed > 0

    def test_serve_fingerprints_unchanged(self):
        from repro.verify.fuzz import run_serve_scenario

        for seed, expected in self.PINNED.items():
            res = run_serve_scenario(seed)
            assert res.fingerprint == expected, (
                f"serve fuzz seed {seed} drifted: {res.fingerprint}"
            )
