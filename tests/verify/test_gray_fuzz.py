"""The randomized gray-failure grid: deterministic, conserved, covered.

``run_gray_scenario`` derives a whole scenario — topology, load, tail
policy, detection, one or two gray faults, maybe a crash — from a seed,
runs it under the invariant monitor, and fingerprints the result.  The
grid only means something if (a) a seed is perfectly reproducible and
(b) a modest seed range actually exercises the space.
"""

from repro.verify.fuzz import GrayFuzzResult, run_gray_scenario


def test_gray_scenario_is_deterministic():
    first = run_gray_scenario(3)
    second = run_gray_scenario(3)
    assert isinstance(first, GrayFuzzResult)
    assert first.fingerprint == second.fingerprint
    assert first.gray_kinds == second.gray_kinds
    assert first.generated == second.generated
    assert first.completed == second.completed
    assert first.hedges_sent == second.hedges_sent


def test_gray_scenarios_hold_invariants():
    for seed in range(10):
        res = run_gray_scenario(seed)
        assert res.ok, (seed, res.violations[:3])
        assert res.generated > 0
        assert res.generated == (
            res.completed + res.shed + res.failed
        ), seed


def test_gray_grid_covers_the_space():
    results = [run_gray_scenario(seed) for seed in range(30)]
    kinds = {k for r in results for k in r.gray_kinds}
    assert len(kinds) >= 4, f"30 seeds should span most kinds: {kinds}"
    assert any(r.mitigated for r in results)
    assert any(not r.mitigated for r in results)
    assert any(r.detected for r in results)
    assert any(not r.detected for r in results)
    assert any(r.hedges_sent > 0 for r in results)
