"""Edge cases for the message-passing layer."""

import pytest

from repro.bench import make_cluster
from repro.ethernet import LinkParams
from repro.mp import ANY_SOURCE, MpWorld
from repro.mp.endpoint import SLOT_BYTES


def world(nodes=2, **kw):
    return MpWorld(make_cluster("1L-1G", nodes=nodes, **kw))


def test_concurrent_rendezvous_both_directions():
    w = world()
    size = 300_000

    def program(ep):
        peer = 1 - ep.rank
        payload = bytes([ep.rank + 1]) * size
        # Both ranks send a large message simultaneously, then receive.
        send_done = []

        def do_send():
            yield from ep.send(peer, payload, tag=1)
            send_done.append(True)

        sproc = ep.sim.process(do_send())
        msg = yield from ep.recv(source=peer, tag=1)
        yield sproc
        return msg.data[0]

    assert w.run(program) == [2, 1]


def test_interleaved_rendezvous_and_eager():
    """Eager messages can be consumed out of order around a rendezvous.

    (The rendezvous itself must be received in matching order — a blocking
    large send with no matching receive is a deadlock in MPI semantics
    too, which an earlier version of this test usefully demonstrated.)
    """
    w = world()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, b"small-1", tag=1)
            yield from ep.send(1, b"B" * 100_000, tag=2)  # rendezvous
            yield from ep.send(1, b"small-3", tag=3)
        else:
            m2 = yield from ep.recv(source=0, tag=2)
            m3 = yield from ep.recv(source=0, tag=3)
            m1 = yield from ep.recv(source=0, tag=1)  # from unexpected queue
            return (m1.data, len(m2.data), m3.data)

    assert w.run(program)[1] == (b"small-1", 100_000, b"small-3")


def test_multiple_rendezvous_same_pair():
    w = world()
    n, size = 4, 80_000

    def program(ep):
        if ep.rank == 0:
            for i in range(n):
                yield from ep.send(1, bytes([i]) * size, tag=i)
        else:
            out = []
            for i in range(n):
                msg = yield from ep.recv(source=0, tag=i)
                out.append(msg.data[0])
            return out

    assert w.run(program)[1] == list(range(n))


def test_wildcard_recv_matches_rts():
    """A wildcard recv must match a rendezvous announcement too."""
    w = world()
    size = 120_000

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, b"Z" * size, tag=42)
        else:
            msg = yield from ep.recv(source=ANY_SOURCE)
            return (msg.source, msg.tag, len(msg.data))

    assert w.run(program)[1] == (0, 42, size)


def test_mp_rejects_non_bytes():
    w = world()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, [1, 2, 3])  # type: ignore[arg-type]
        yield 0

    with pytest.raises(Exception):
        w.run(program)


def test_eager_exact_slot_fit():
    """Payload exactly filling a slot (minus envelope) stays eager."""
    w = world()
    from repro.mp.endpoint import ENVELOPE_BYTES

    size = SLOT_BYTES - ENVELOPE_BYTES

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, b"e" * size, tag=0)
        else:
            msg = yield from ep.recv(source=0, tag=0)
            return len(msg.data)

    assert w.run(program)[1] == size


def test_rendezvous_on_lossy_link():
    w = world(link=LinkParams(speed_bps=1e9, bit_error_rate=5e-7))
    size = 200_000
    payload = bytes(i % 256 for i in range(size))

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, payload, tag=1)
        else:
            msg = yield from ep.recv(source=0, tag=1)
            return msg.data == payload

    assert w.run(program, limit_ms=120_000)[1] is True
