"""Tests for collective operations at several world sizes."""

import numpy as np
import pytest

from repro.bench import make_cluster
from repro.mp import (
    MpWorld,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
)

SIZES = [1, 2, 3, 4, 7, 8]


def world(nodes):
    return MpWorld(make_cluster("1L-1G", nodes=nodes))


@pytest.mark.parametrize("nodes", SIZES)
def test_barrier_synchronizes(nodes):
    w = world(nodes)
    exits = []

    def program(ep):
        yield 1000 * (ep.rank + 1)  # staggered arrival
        yield from barrier(ep)
        exits.append(ep.sim.now)

    w.run(program)
    assert max(exits) - min(exits) < 500_000


@pytest.mark.parametrize("nodes", SIZES)
def test_barrier_repeatable(nodes):
    w = world(nodes)

    def program(ep):
        for round_no in range(4):
            yield from barrier(ep, tag_round=round_no)
        return True

    assert all(w.run(program))


@pytest.mark.parametrize("nodes", SIZES)
@pytest.mark.parametrize("root", [0, 1])
def test_bcast(nodes, root):
    if root >= nodes:
        pytest.skip("root outside world")
    w = world(nodes)
    payload = b"broadcast-payload" * 10

    def program(ep):
        data = payload if ep.rank == root else None
        out = yield from bcast(ep, data, root=root)
        return out

    assert w.run(program) == [payload] * nodes


@pytest.mark.parametrize("nodes", SIZES)
def test_reduce_sum(nodes):
    w = world(nodes)

    def program(ep):
        value = np.array([float(ep.rank + 1), 2.0])
        out = yield from reduce(ep, value, np.add, root=0)
        return None if out is None else out.tolist()

    results = w.run(program)
    expected = [sum(range(1, nodes + 1)), 2.0 * nodes]
    assert results[0] == expected
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("nodes", SIZES)
def test_allreduce_max(nodes):
    w = world(nodes)

    def program(ep):
        value = np.array([float(ep.rank)])
        out = yield from allreduce(ep, value, np.maximum)
        return float(out[0])

    assert w.run(program) == [float(nodes - 1)] * nodes


@pytest.mark.parametrize("nodes", SIZES)
def test_gather(nodes):
    w = world(nodes)

    def program(ep):
        out = yield from gather(ep, bytes([ep.rank]) * 3, root=0)
        return out

    results = w.run(program)
    assert results[0] == [bytes([r]) * 3 for r in range(nodes)]


@pytest.mark.parametrize("nodes", SIZES)
def test_alltoall(nodes):
    w = world(nodes)

    def program(ep):
        chunks = [bytes([ep.rank * 16 + d]) for d in range(ep.size)]
        out = yield from alltoall(ep, chunks)
        return [c[0] for c in out]

    results = w.run(program)
    for rank, row in enumerate(results):
        assert row == [src * 16 + rank for src in range(nodes)]


def test_alltoall_wrong_chunks_rejected():
    w = world(2)

    def program(ep):
        yield from alltoall(ep, [b"x"])  # needs 2 chunks

    with pytest.raises(Exception):
        w.run(program)


def test_allreduce_matches_numpy_on_matrices():
    w = world(4)

    def program(ep):
        rng = np.random.default_rng(ep.rank)
        value = rng.standard_normal((8, 8))
        out = yield from allreduce(ep, value, np.add)
        return out

    results = w.run(program)
    expected = sum(
        np.random.default_rng(r).standard_normal((8, 8)) for r in range(4)
    )
    for out in results:
        assert np.allclose(out, expected)
