"""Tests for the message-passing layer (point-to-point + matching)."""

import numpy as np
import pytest

from repro.bench import make_cluster
from repro.mp import ANY_SOURCE, ANY_TAG, MpWorld
from repro.mp.endpoint import SLOT_BYTES


def world(nodes=2, config="1L-1G", **kw):
    return MpWorld(make_cluster(config, nodes=nodes, **kw))


class TestPointToPoint:
    def test_simple_send_recv(self):
        w = world()

        def program(ep):
            if ep.rank == 0:
                yield from ep.send(1, b"ping", tag=7)
            else:
                msg = yield from ep.recv(source=0, tag=7)
                return msg.data

        assert w.run(program)[1] == b"ping"

    def test_eager_boundary_sizes(self):
        sizes = [1, 100, SLOT_BYTES - 64, SLOT_BYTES - 32]
        w = world()

        def program(ep):
            out = []
            if ep.rank == 0:
                for i, s in enumerate(sizes):
                    yield from ep.send(1, bytes([i]) * s, tag=i)
            else:
                for i, s in enumerate(sizes):
                    msg = yield from ep.recv(source=0, tag=i)
                    out.append((len(msg.data), msg.data[:1]))
            return out

        results = w.run(program)[1]
        assert results == [(s, bytes([i])) for i, s in enumerate(sizes)]

    def test_rendezvous_large_message(self):
        w = world()
        size = 500_000
        payload = bytes(i % 256 for i in range(size))

        def program(ep):
            if ep.rank == 0:
                yield from ep.send(1, payload, tag=1)
            else:
                msg = yield from ep.recv(source=0, tag=1)
                return msg.data == payload

        assert w.run(program)[1] is True

    def test_rendezvous_recv_posted_first(self):
        w = world()
        size = 200_000

        def program(ep):
            if ep.rank == 1:
                msg = yield from ep.recv(source=0, tag=2)
                return len(msg.data)
            # Let the receiver block first, then send.
            yield 2_000_000
            yield from ep.send(1, b"z" * size, tag=2)

        assert w.run(program)[1] == size

    def test_message_order_preserved_per_tag(self):
        w = world()
        n = 40

        def program(ep):
            if ep.rank == 0:
                for i in range(n):
                    yield from ep.send(1, i.to_bytes(4, "big"), tag=3)
            else:
                got = []
                for _ in range(n):
                    msg = yield from ep.recv(source=0, tag=3)
                    got.append(int.from_bytes(msg.data, "big"))
                return got

        assert w.run(program)[1] == list(range(n))

    def test_tag_matching_out_of_order(self):
        w = world()

        def program(ep):
            if ep.rank == 0:
                yield from ep.send(1, b"first", tag=10)
                yield from ep.send(1, b"second", tag=20)
            else:
                # Ask for tag 20 first: tag-10 message must wait unexpected.
                m20 = yield from ep.recv(source=0, tag=20)
                m10 = yield from ep.recv(source=0, tag=10)
                return (m20.data, m10.data)

        assert w.run(program)[1] == (b"second", b"first")

    def test_wildcard_source_and_tag(self):
        w = world(nodes=3)

        def program(ep):
            if ep.rank in (0, 1):
                yield from ep.send(2, bytes([ep.rank]), tag=ep.rank + 50)
            else:
                a = yield from ep.recv(source=ANY_SOURCE, tag=ANY_TAG)
                b = yield from ep.recv(source=ANY_SOURCE, tag=ANY_TAG)
                return sorted([a.data[0], b.data[0]])

        assert w.run(program)[2] == [0, 1]

    def test_self_send_rejected(self):
        w = world()

        def program(ep):
            if ep.rank == 0:
                yield from ep.send(0, b"x")
            yield 0

        with pytest.raises(Exception):
            w.run(program)

    def test_credit_flow_many_messages(self):
        """More messages than ring slots: credits must recycle slots."""
        w = world()
        n = 200

        def program(ep):
            if ep.rank == 0:
                for i in range(n):
                    yield from ep.send(1, i.to_bytes(4, "big"), tag=1)
            else:
                total = 0
                for _ in range(n):
                    msg = yield from ep.recv(source=0, tag=1)
                    total += int.from_bytes(msg.data, "big")
                return total

        assert w.run(program)[1] == sum(range(n))

    def test_bidirectional_exchange(self):
        w = world()

        def program(ep):
            peer = 1 - ep.rank
            yield from ep.send(peer, bytes([ep.rank]) * 1000, tag=4)
            msg = yield from ep.recv(source=peer, tag=4)
            return msg.data[0]

        assert w.run(program) == [1, 0]

    def test_stats_counters(self):
        w = world()

        def program(ep):
            if ep.rank == 0:
                yield from ep.send(1, b"x", tag=0)
            else:
                yield from ep.recv()

        w.run(program)
        assert w.endpoints[0].stats_sent == 1
        assert w.endpoints[1].stats_received == 1

    def test_works_on_two_rails(self):
        w = world(config="2Lu-1G")
        size = 300_000
        payload = bytes(i % 255 for i in range(size))

        def program(ep):
            if ep.rank == 0:
                yield from ep.send(1, payload, tag=1)
            else:
                msg = yield from ep.recv(source=0, tag=1)
                return msg.data == payload

        assert w.run(program)[1] is True
