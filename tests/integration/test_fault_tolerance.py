"""Fault-tolerance integration tests: the §2.4 reliability guarantees.

"All operations and transfers are guaranteed to complete in the presence
of dropped Ethernet frames due to transient problems, e.g. contention,
bit errors, or transient link failures."
"""

import pytest

from repro.apps import WaterSpatialApp, run_app
from repro.bench import make_cluster
from repro.ethernet import LinkParams, SwitchParams
from repro.mp import MpWorld


def _stream(cluster, size=150_000, limit_ms=30_000):
    a, b = cluster.connect(0, 1)
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 253 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        h = yield from a.rdma_write(src, dst, size)
        yield from h.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=limit_ms * 1_000_000)
    return b.node.memory.read(dst, size) == payload, a


class TestTransientOutages:
    def test_outage_mid_transfer_recovers(self):
        cluster = make_cluster("1L-1G", nodes=2)
        link = cluster.nodes[0].nics[0].tx_link
        cluster.sim.schedule(1_000_000, link.fail_for, 4_000_000)
        ok, a = _stream(cluster)
        assert ok
        assert a.stats.retransmitted_frames > 0

    def test_outage_on_reverse_path_kills_acks(self):
        """Losing only acknowledgements triggers the coarse timeout path."""
        cluster = make_cluster("1L-1G", nodes=2)
        reverse = cluster.nodes[1].nics[0].tx_link
        cluster.sim.schedule(500_000, reverse.fail_for, 6_000_000)
        ok, a = _stream(cluster)
        assert ok
        # The sender had to provoke a re-ack (duplicate detection path).
        assert a.stats.timeout_retransmits > 0 or a.stats.retransmitted_frames > 0

    def test_flapping_link(self):
        """Repeated short outages: every flap is recovered."""
        cluster = make_cluster("1L-1G", nodes=2)
        link = cluster.nodes[0].nics[0].tx_link
        for k in range(5):
            cluster.sim.schedule(
                500_000 + k * 3_000_000, link.fail_for, 700_000
            )
        ok, a = _stream(cluster, limit_ms=60_000)
        assert ok

    def test_one_rail_dies_on_two_rail_config(self):
        """With two rails, losing one for a while must not lose data."""
        cluster = make_cluster("2Lu-1G", nodes=2)
        rail0 = cluster.nodes[0].nics[0].tx_link
        cluster.sim.schedule(800_000, rail0.fail_for, 8_000_000)
        ok, a = _stream(cluster, limit_ms=60_000)
        assert ok


class TestApplicationsUnderFaults:
    def test_dsm_app_with_switch_congestion(self):
        result = run_app(
            WaterSpatialApp(n_molecules=512, iterations=1, grid=4),
            nodes=4,
            switch=SwitchParams(ports=4, output_queue_frames=24),
        )
        assert result.verified

    def test_mp_program_on_lossy_links(self):
        cluster = make_cluster(
            "1L-1G", nodes=4,
            link=LinkParams(speed_bps=1e9, bit_error_rate=2e-7),
        )
        world = MpWorld(cluster)
        n = 30

        def program(ep):
            peer = (ep.rank + 1) % ep.size
            total = 0
            for i in range(n):
                yield from ep.send(peer, (ep.rank * n + i).to_bytes(4, "big"), tag=i)
                msg = yield from ep.recv(tag=i)
                total += int.from_bytes(msg.data, "big")
            return total

        results = world.run(program, limit_ms=120_000)
        # Each rank receives the full sequence from its left neighbour.
        for rank, total in enumerate(results):
            src = (rank - 1) % 4
            assert total == sum(src * n + i for i in range(n))


class TestRegressionScenarios:
    def test_uneven_frame_sizes_no_nack_storm(self):
        """Regression: byte-imbalanced round-robin used to starve one rail
        and trigger spurious NACK retransmissions (see striping.py)."""
        cluster = make_cluster("2L-1G", nodes=2)
        a, b = cluster.connect(0, 1)
        # 16 KB ops fragment into 11 full frames + 1 small tail — the
        # pattern that used to load one rail with all the full frames.
        size = 16384
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)

        def app():
            handles = []
            for _ in range(60):
                h = yield from a.rdma_write(src, dst, size)
                handles.append(h)
            for h in handles:
                yield from h.wait()

        proc = cluster.sim.process(app())
        cluster.sim.run_until_done(proc, limit=120_000_000_000)
        assert a.stats.nack_retransmits == 0
        assert a.stats.extra_frame_fraction < 0.10

    def test_duplicate_frames_do_not_corrupt_memory(self):
        """Heavy loss causes duplicates; the tracker must apply each frame
        exactly once."""
        cluster = make_cluster(
            "1L-1G", nodes=2,
            link=LinkParams(speed_bps=1e9, bit_error_rate=1.5e-6),
        )
        ok, a = _stream(cluster, size=120_000, limit_ms=60_000)
        assert ok
