"""Cross-module integration tests: the full stack under realistic load."""

import numpy as np
import pytest

from repro.apps import FftApp, run_app
from repro.bench import make_cluster, run_micro
from repro.bench.micro import run_one_way
from repro.dsm import DsmRuntime
from repro.ethernet import LinkParams, SwitchParams


class TestAllToAll:
    def test_sixteen_node_all_to_all_exchange(self):
        """Every node writes a distinct buffer to every other node."""
        n, size = 8, 3000
        cluster = make_cluster("1L-1G", nodes=n)
        handles = {}
        bufs = {}
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                hi, hj = cluster.connect(i, j)
                src = hi.node.memory.alloc(size)
                dst = hj.node.memory.alloc(size)
                payload = bytes((i * 16 + j + k) % 256 for k in range(size))
                hi.node.memory.write(src, payload)
                bufs[(i, j)] = (hj, dst, payload)
                handles[(i, j)] = (hi, src, dst)

        procs = []
        for (i, j), (hi, src, dst) in handles.items():

            def app(hi=hi, src=src, dst=dst, size=size):
                h = yield from hi.rdma_write(src, dst, size)
                yield from h.wait()

            procs.append(cluster.sim.process(app()))
        for p in procs:
            cluster.sim.run_until_done(p, limit=60_000_000_000)
        for (i, j), (hj, dst, payload) in bufs.items():
            assert hj.node.memory.read(dst, size) == payload, (i, j)
        assert cluster.total_frames_dropped() == 0

    def test_incast_congestion_recovers(self):
        """Many-to-one with tiny switch buffers: drops happen, data lands."""
        n, size = 6, 60_000
        cluster = make_cluster(
            "1L-1G",
            nodes=n,
            switch=SwitchParams(ports=n, output_queue_frames=16),
        )
        targets = []
        procs = []
        for i in range(n - 1):
            hi, hlast = cluster.connect(i, n - 1)
            src = hi.node.memory.alloc(size)
            dst = hlast.node.memory.alloc(size)
            payload = bytes((i + k) % 256 for k in range(size))
            hi.node.memory.write(src, payload)
            targets.append((hlast, dst, payload))

            def app(hi=hi, src=src, dst=dst):
                h = yield from hi.rdma_write(src, dst, size)
                yield from h.wait()

            procs.append(cluster.sim.process(app()))
        for p in procs:
            cluster.sim.run_until_done(p, limit=120_000_000_000)
        assert cluster.total_frames_dropped() > 0, "expected congestion drops"
        for hlast, dst, payload in targets:
            assert hlast.node.memory.read(dst, size) == payload


class TestMixedWorkloads:
    def test_dsm_and_raw_rdma_share_a_cluster(self):
        """A DSM app and a raw RDMA stream coexist on one cluster."""
        cluster = make_cluster("1L-1G", nodes=4)
        rt = DsmRuntime(cluster)
        region = rt.alloc_region("shared", 64 * 4096, home="block")

        # Raw side stream between nodes 0 and 1 (same connection pair the
        # DSM uses — exercises op multiplexing on one connection).
        a, b = cluster.connect(0, 1)
        size = 50_000
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        a.node.memory.write(src, b"R" * size)

        def stream():
            h = yield from a.rdma_write(src, dst, size)
            yield from h.wait()

        stream_proc = cluster.sim.process(stream())

        def program(node):
            view = yield from node.access(
                region, node.rank * 4096, 4096, "rw"
            )
            view[:8] = node.rank + 1
            yield from node.barrier(0)
            total = 0
            for peer in range(node.size):
                v = yield from node.access(region, peer * 4096, 8, "r")
                total += int(v[0])
            return total

        result = rt.run(program)
        cluster.sim.run_until_done(stream_proc, limit=60_000_000_000)
        assert result.returns == [10, 10, 10, 10]  # 1+2+3+4
        assert b.node.memory.read(dst, size) == b"R" * size

    def test_app_runs_on_lossy_network(self):
        """A full DSM application completes correctly despite bit errors."""
        result = run_app(
            FftApp(m=64),
            nodes=4,
            link=LinkParams(speed_bps=1e9, bit_error_rate=5e-8),
        )
        assert result.verified


class TestCrossConfig:
    @pytest.mark.parametrize("config", ["1L-1G", "2L-1G", "2Lu-1G", "1L-10G"])
    def test_one_way_works_on_every_config(self, config):
        r = run_one_way(make_cluster(config, nodes=2), 65536)
        assert r.throughput_mbps > 50

    def test_two_rail_uses_both_switches(self):
        cluster = make_cluster("2L-1G", nodes=2)
        run_one_way(cluster, 262144, iterations=5)
        for sw in cluster.switches:
            assert sw.forwarded > 0

    def test_protocol_time_accounted_during_micro(self):
        cluster = make_cluster("1L-1G", nodes=2)
        r = run_micro("one-way", cluster, 65536)
        assert r.cpu_util_pct > 0
        for stack in cluster.stacks[:2]:
            assert stack.node.protocol_cpu_time() > 0
