"""Unit tests for the NIC model."""

import pytest

from repro.ethernet import (
    Frame,
    LinkParams,
    MultiEdgeHeader,
    Nic,
    NicParams,
    connect_back_to_back,
)
from repro.sim import RngRegistry, Simulator


def make_pair(sim, params_a=None, params_b=None, link=None, rng=None):
    rng = rng or RngRegistry(0)
    a = Nic(sim, params_a or NicParams(tx_jitter_ns=0), mac=1, rng=rng, name="a")
    b = Nic(sim, params_b or NicParams(tx_jitter_ns=0), mac=2, rng=rng, name="b")
    connect_back_to_back(sim, a, b, link or LinkParams(propagation_ns=100), rng)
    return a, b


def data_frame(n=1000, seq=0):
    return Frame(
        src_mac=1,
        dst_mac=2,
        header=MultiEdgeHeader(payload_length=n, seq=seq),
        payload=bytes(n),
    )


def test_transmit_delivers_to_peer():
    sim = Simulator()
    a, b = make_pair(sim)
    assert a.transmit(data_frame())
    sim.run()
    frames, completions = b.poll()
    assert len(frames) == 1
    assert a.counters.tx_frames == 1
    assert b.counters.rx_frames == 1


def test_tx_completion_counted_on_sender():
    sim = Simulator()
    a, b = make_pair(sim)
    a.transmit(data_frame())
    sim.run()
    _, completions = a.poll()
    assert completions == 1


def test_tx_ring_full_rejects():
    sim = Simulator()
    a, _ = make_pair(sim, params_a=NicParams(tx_ring_frames=2, tx_jitter_ns=0))
    assert a.transmit(data_frame())
    assert a.transmit(data_frame())
    assert not a.transmit(data_frame())


def test_tx_serialization_paces_frames():
    sim = Simulator()
    a, b = make_pair(sim)
    # Two full-size frames at 1G: ~12.3 us each on the wire.
    for seq in range(2):
        a.transmit(data_frame(n=1464, seq=seq))
    sim.run()
    # Total elapsed must be at least two serialisation times.
    assert sim.now >= 2 * 12304


def test_rx_ring_overflow_drops():
    sim = Simulator()
    a, b = make_pair(sim, params_b=NicParams(rx_ring_frames=4, tx_jitter_ns=0))
    b.disable_interrupts()
    for seq in range(10):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    assert b.counters.rx_dropped_ring_full == 6
    frames, _ = b.poll()
    assert len(frames) == 4


def test_corrupted_frame_dropped_at_crc():
    sim = Simulator()
    a, b = make_pair(sim)
    f = data_frame()
    # Corruption happens on the wire, after the sender's NIC: deliver a
    # corrupted frame straight to the receiving NIC.
    f.corrupted = True
    b.on_frame(f)
    sim.run()
    frames, _ = b.poll()
    assert frames == []
    assert b.counters.rx_dropped_crc == 1


def test_retransmit_copy_sheds_stale_corruption():
    # A retransmission is a fresh physical frame: senders clone via
    # Frame.wire_copy(), so corruption that hit a previous copy on the
    # wire never rides along (transmit itself no longer launders flags —
    # the copy is independent by construction).
    sim = Simulator()
    a, b = make_pair(sim)
    f = data_frame()
    f.corrupted = True  # a previous copy was corrupted on the wire
    a.transmit(f.wire_copy())
    sim.run()
    frames, _ = b.poll()
    assert len(frames) == 1
    assert b.counters.rx_dropped_crc == 0


def test_transmit_stamps_per_sim_uid():
    sim = Simulator()
    a, b = make_pair(sim)
    f1, f2 = data_frame(), data_frame(seq=1)
    a.transmit(f1)
    a.transmit(f2)
    assert (f1.uid, f2.uid) == (1, 2)


def test_interrupt_fires_after_coalesce_threshold():
    sim = Simulator()
    params = NicParams(coalesce_frames=4, coalesce_timeout_ns=10**9, tx_jitter_ns=0)
    a, b = make_pair(sim, params_b=params)
    irqs = []
    b.on_irq = lambda nic: irqs.append(sim.now)
    for seq in range(4):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    assert len(irqs) == 1
    assert b.counters.irqs_raised == 1


def test_interrupt_fires_on_coalesce_timeout_for_single_frame():
    sim = Simulator()
    params = NicParams(coalesce_frames=64, coalesce_timeout_ns=5000, tx_jitter_ns=0)
    a, b = make_pair(sim, params_b=params)
    irqs = []
    b.on_irq = lambda nic: irqs.append(sim.now)
    a.transmit(data_frame(n=50))
    sim.run()
    assert len(irqs) == 1


def test_no_interrupts_when_disabled():
    sim = Simulator()
    a, b = make_pair(sim)
    irqs = []
    b.on_irq = lambda nic: irqs.append(sim.now)
    b.disable_interrupts()
    for seq in range(20):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    assert irqs == []
    frames, _ = b.poll()
    assert len(frames) == 20


def test_enable_interrupts_fires_for_pending_backlog():
    sim = Simulator()
    a, b = make_pair(sim)
    irqs = []
    b.on_irq = lambda nic: irqs.append(sim.now)
    b.disable_interrupts()
    for seq in range(10):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    b.enable_interrupts()
    sim.run()
    assert len(irqs) == 1


def test_unmaskable_tx_irq_fires_even_when_disabled():
    sim = Simulator()
    params = NicParams(
        unmaskable_tx_irq=True, tx_completion_batch=2, tx_jitter_ns=0
    )
    a, b = make_pair(sim, params_a=params)
    irqs = []
    a.on_irq = lambda nic: irqs.append(sim.now)
    a.disable_interrupts()
    for seq in range(4):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    assert len(irqs) == 2  # batches of 2 completions
    assert a.counters.tx_irqs_raised == 2


def test_maskable_tx_irq_respects_disable():
    sim = Simulator()
    params = NicParams(
        unmaskable_tx_irq=False, tx_completion_batch=2, tx_jitter_ns=0
    )
    a, b = make_pair(sim, params_a=params)
    irqs = []
    a.on_irq = lambda nic: irqs.append(sim.now)
    a.disable_interrupts()
    for seq in range(4):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    assert irqs == []


def test_poll_max_frames_limits_harvest():
    sim = Simulator()
    a, b = make_pair(sim)
    b.disable_interrupts()
    for seq in range(6):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    frames, _ = b.poll(max_frames=4)
    assert len(frames) == 4
    assert b.has_pending()
    frames, _ = b.poll()
    assert len(frames) == 2
    assert not b.has_pending()


def test_tx_jitter_varies_latency_but_keeps_order():
    sim = Simulator()
    rng = RngRegistry(3)
    a = Nic(sim, NicParams(tx_jitter_ns=2000), mac=1, rng=rng, name="a")
    b = Nic(sim, NicParams(), mac=2, rng=rng, name="b")
    connect_back_to_back(sim, a, b, LinkParams(propagation_ns=10), rng)
    b.disable_interrupts()
    for seq in range(20):
        a.transmit(data_frame(n=50, seq=seq))
    sim.run()
    frames, _ = b.poll()
    assert [f.header.seq for f in frames] == list(range(20))


def test_nic_params_validation():
    with pytest.raises(ValueError):
        NicParams(speed_bps=0)
    with pytest.raises(ValueError):
        NicParams(tx_ring_frames=0)
    with pytest.raises(ValueError):
        NicParams(coalesce_frames=0)
