"""Unit tests for the switch model and topology wiring."""

import pytest

from repro.ethernet import (
    Frame,
    LinkParams,
    MultiEdgeHeader,
    Nic,
    NicParams,
    Switch,
    SwitchParams,
    connect_nic_to_switch,
    mac_address,
)
from repro.sim import RngRegistry, Simulator


def build_star(sim, n_nodes, switch_params=None, nic_params=None, rng=None):
    rng = rng or RngRegistry(0)
    switch = Switch(sim, switch_params or SwitchParams(ports=max(2, n_nodes)))
    nics = []
    for i in range(n_nodes):
        nic = Nic(
            sim,
            nic_params or NicParams(tx_jitter_ns=0),
            mac=mac_address(i, 0),
            rng=rng,
            name=f"nic{i}",
        )
        connect_nic_to_switch(sim, nic, switch, i, LinkParams(propagation_ns=100), rng)
        nic.disable_interrupts()
        nics.append(nic)
    return switch, nics


def frame_between(nics, src, dst, n=100, seq=0):
    return Frame(
        src_mac=nics[src].mac,
        dst_mac=nics[dst].mac,
        header=MultiEdgeHeader(payload_length=n, seq=seq),
        payload=bytes(n),
    )


def test_switch_forwards_to_learned_port():
    sim = Simulator()
    switch, nics = build_star(sim, 3)
    nics[0].transmit(frame_between(nics, 0, 2))
    sim.run()
    assert len(nics[2].poll()[0]) == 1
    assert len(nics[1].poll()[0]) == 0
    assert switch.forwarded == 1
    assert switch.flooded == 0


def test_switch_floods_unknown_destination():
    sim = Simulator()
    switch, nics = build_star(sim, 4)
    unknown = Frame(
        src_mac=nics[0].mac,
        dst_mac=0xABCDEF,
        header=MultiEdgeHeader(payload_length=10),
        payload=bytes(10),
    )
    nics[0].transmit(unknown)
    sim.run()
    assert switch.flooded == 1
    # Every other node sees the frame; the sender does not.
    assert len(nics[0].poll()[0]) == 0
    for i in (1, 2, 3):
        assert len(nics[i].poll()[0]) == 1


def test_switch_learns_from_source():
    sim = Simulator()
    switch, nics = build_star(sim, 3)
    # Clear the pre-learned table to exercise dynamic learning.
    switch._mac_table.clear()
    nics[0].transmit(frame_between(nics, 0, 1))  # floods, learns nic0
    sim.run()
    nics[1].transmit(frame_between(nics, 1, 0))  # unicast back to nic0
    sim.run()
    assert switch.forwarded == 1


def test_switch_store_and_forward_latency():
    sim = Simulator()
    switch, nics = build_star(
        sim, 2, switch_params=SwitchParams(ports=2, forwarding_latency_ns=5000)
    )
    nics[0].transmit(frame_between(nics, 0, 1, n=1464))
    sim.run()
    # Path: NIC dma(600) + serialize(12304) + prop(100) + fwd(5000)
    #       + switch serialize(12304) + prop(100) + rx dma(600)
    assert sim.now >= 600 + 12304 + 100 + 5000 + 12304 + 100 + 600


def test_switch_output_queue_overflow_drops():
    sim = Simulator()
    # Tiny output queue; two senders blast one receiver.
    switch, nics = build_star(
        sim,
        3,
        switch_params=SwitchParams(ports=3, output_queue_frames=4),
    )
    for seq in range(40):
        nics[0].transmit(frame_between(nics, 0, 2, n=1400, seq=seq))
        nics[1].transmit(frame_between(nics, 1, 2, n=1400, seq=seq))
    sim.run()
    received = len(nics[2].poll()[0])
    assert switch.dropped_total > 0
    assert received + switch.dropped_total == 80


def test_congestion_free_many_to_many_no_drops():
    sim = Simulator()
    switch, nics = build_star(sim, 4)
    for seq in range(10):
        nics[0].transmit(frame_between(nics, 0, 1, seq=seq))
        nics[1].transmit(frame_between(nics, 1, 2, seq=seq))
        nics[2].transmit(frame_between(nics, 2, 3, seq=seq))
    sim.run()
    assert switch.dropped_total == 0
    assert len(nics[1].poll()[0]) == 10
    assert len(nics[2].poll()[0]) == 10
    assert len(nics[3].poll()[0]) == 10


def test_switch_params_validation():
    with pytest.raises(ValueError):
        SwitchParams(ports=1)
    with pytest.raises(ValueError):
        SwitchParams(output_queue_frames=0)


def test_mac_address_unique_per_node_and_rail():
    macs = {mac_address(n, r) for n in range(16) for r in range(2)}
    assert len(macs) == 32


def test_hairpin_frame_dropped():
    sim = Simulator()
    switch, nics = build_star(sim, 2)
    # Destination learned on the same port as ingress: dropped silently.
    f = frame_between(nics, 0, 0)
    nics[0].transmit(f)
    sim.run()
    assert len(nics[0].poll()[0]) == 0
    assert len(nics[1].poll()[0]) == 0
