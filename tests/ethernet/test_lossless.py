"""Tests for core-assisted (lossless) switch mode — paper §6 hybrid."""

import pytest

from repro.bench import make_cluster
from repro.ethernet import SwitchParams


def _incast(cluster, senders=3, size=120_000, limit_ms=60_000):
    """N senders blast one receiver; returns (all_intact, conns)."""
    n = senders + 1
    conns = []
    procs = []
    targets = []
    payload = bytes(i % 241 for i in range(size))
    for i in range(senders):
        a, b = cluster.connect(i, n - 1)
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        a.node.memory.write(src, payload)
        conns.append(a)
        targets.append((b, dst))

        def app(a=a, src=src, dst=dst):
            h = yield from a.rdma_write(src, dst, size)
            yield from h.wait()

        procs.append(cluster.sim.process(app()))
    for p in procs:
        cluster.sim.run_until_done(p, limit=limit_ms * 1_000_000)
    intact = all(
        b.node.memory.read(dst, size) == payload for b, dst in targets
    )
    return intact, conns


def test_lossy_incast_drops_and_retransmits():
    cluster = make_cluster(
        "1L-1G", nodes=4,
        switch=SwitchParams(ports=4, output_queue_frames=24),
    )
    intact, conns = _incast(cluster)
    assert intact
    assert cluster.total_frames_dropped() > 0
    assert sum(c.stats.retransmitted_frames for c in conns) > 0


def test_lossless_incast_never_drops():
    cluster = make_cluster(
        "1L-1G", nodes=4,
        switch=SwitchParams(ports=4, output_queue_frames=24, lossless=True),
    )
    intact, conns = _incast(cluster)
    assert intact
    assert cluster.total_frames_dropped() == 0
    # The congestion went into fabric buffering instead.  (Deep fabric
    # queues can still provoke *spurious* timeout retransmissions — the
    # classic bufferbloat effect of lossless fabrics — but nothing is
    # actually lost and every duplicate is filtered at the receiver.)
    port = cluster.switches[0].port(3)
    assert port.paused_frames > 0
    assert port.peak_queue_depth > 24
    dup = sum(
        s.protocol.total_stats().duplicate_frames for s in cluster.stacks
    )
    retrans = sum(c.stats.retransmitted_frames for c in conns)
    assert dup == retrans  # all retransmissions were unnecessary duplicates


def test_lossless_faster_than_lossy_under_heavy_incast():
    """Core-assisted flow control avoids the retransmission tax."""
    import time

    def run(lossless):
        cluster = make_cluster(
            "1L-1G", nodes=5,
            switch=SwitchParams(
                ports=5, output_queue_frames=16, lossless=lossless
            ),
        )
        t0 = cluster.sim.now
        intact, _ = _incast(cluster, senders=4, size=150_000)
        assert intact
        return cluster.sim.now - t0

    t_lossless = run(True)
    t_lossy = run(False)
    assert t_lossless <= t_lossy


def test_lossless_mode_off_by_default():
    assert not SwitchParams().lossless
