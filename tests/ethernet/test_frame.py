"""Unit tests for frame model and header encoding."""

import pytest

from repro.ethernet import (
    ETH_MIN_PAYLOAD,
    ETH_OVERHEAD_BYTES,
    MULTIEDGE_HEADER_BYTES,
    Frame,
    FrameType,
    MultiEdgeHeader,
    max_payload_per_frame,
    wire_time_ns,
)


def make_frame(payload_len=100, **kwargs):
    header = MultiEdgeHeader(payload_length=payload_len, **kwargs)
    return Frame(src_mac=1, dst_mac=2, header=header, payload=bytes(payload_len))


def test_header_roundtrip():
    h = MultiEdgeHeader(
        frame_type=FrameType.DATA,
        flags=0b101,
        connection_id=7,
        seq=123456,
        ack=99,
        op_id=42,
        op_seq=17,
        remote_address=0xDEADBEEFCAFE,
        op_length=1 << 20,
        payload_length=1464,
    )
    decoded = MultiEdgeHeader.decode(h.encode())
    assert decoded == h


def test_header_is_36_bytes():
    assert MULTIEDGE_HEADER_BYTES == 36
    assert len(MultiEdgeHeader().encode()) == 36


def test_header_decode_all_frame_types():
    for ftype in FrameType:
        h = MultiEdgeHeader(frame_type=ftype)
        assert MultiEdgeHeader.decode(h.encode()).frame_type == ftype


def test_max_payload_is_mtu_minus_header():
    assert max_payload_per_frame() == 1500 - 36


def test_frame_wire_bytes_includes_all_overhead():
    f = make_frame(payload_len=1000)
    assert f.wire_bytes == 1000 + 36 + ETH_OVERHEAD_BYTES


def test_small_frame_padded_to_min_payload():
    f = make_frame(payload_len=0)
    # 36-byte MultiEdge header < 46-byte minimum, so the MAC payload pads.
    assert f.mac_payload_bytes == ETH_MIN_PAYLOAD
    assert f.wire_bytes == ETH_MIN_PAYLOAD + ETH_OVERHEAD_BYTES


def test_frame_rejects_oversized_payload():
    with pytest.raises(ValueError):
        make_frame(payload_len=max_payload_per_frame() + 1)


def test_frame_rejects_payload_length_mismatch():
    header = MultiEdgeHeader(payload_length=10)
    with pytest.raises(ValueError):
        Frame(src_mac=1, dst_mac=2, header=header, payload=bytes(5))


def test_frame_uid_unstamped_until_transmit():
    # uids come from the transmitting NIC's simulator counter, not module
    # state: a freshly built frame is unstamped, and two simulators hand
    # out independent sequences (no cross-simulator interference).
    from repro.sim import Simulator

    a, b = make_frame(), make_frame()
    assert a.uid == 0 and b.uid == 0
    sim1, sim2 = Simulator(), Simulator()
    assert [sim1.next_frame_uid() for _ in range(3)] == [1, 2, 3]
    assert sim2.next_frame_uid() == 1


def test_wire_copy_is_independent():
    orig = make_frame()
    orig.hops = 3
    orig.corrupted = True
    copy = orig.wire_copy()
    assert copy.header is not orig.header
    assert copy.header.seq == orig.header.seq
    assert copy.hops == 0 and not copy.corrupted and copy.uid == 0
    copy.header.ack = 99
    assert orig.header.ack != 99


def test_is_data():
    assert make_frame().is_data
    ack = Frame(
        src_mac=1, dst_mac=2, header=MultiEdgeHeader(frame_type=FrameType.ACK)
    )
    assert not ack.is_data


def test_wire_time_1g_full_frame():
    f = make_frame(payload_len=max_payload_per_frame())
    # Full frame: 1500 MAC payload + 38 overhead = 1538 bytes = 12304 ns at 1G.
    assert f.wire_bytes == 1538
    assert wire_time_ns(f.wire_bytes, 1e9) == 12304


def test_wire_time_10g_is_ten_times_faster():
    assert wire_time_ns(1538, 10e9) == 1230  # rounds 1230.4


def test_repr_is_compact():
    text = repr(make_frame(payload_len=5, seq=3))
    assert "DATA" in text and "seq=3" in text
