"""MAC namespacing: NIC and trunk addresses can never collide.

Regression for two historical bugs: ``mac_address`` let wide node ids
bleed into the rail field (``mac_address(1 << 16, 0)`` equalled
``mac_address(0, 1)``), and trunk ports initially drew from the same
``02:…`` prefix as NICs — a 65536-node fabric would have aliased switch
0's trunk port MACs onto node MACs.
"""

import pytest

from repro.ethernet import (
    NIC_MAC_PREFIX,
    TRUNK_MAC_PREFIX,
    mac_address,
    trunk_mac,
)


class TestMacAddress:
    def test_deterministic_and_distinct(self):
        assert mac_address(3, 1) == mac_address(3, 1)
        assert mac_address(3, 1) != mac_address(1, 3)

    def test_fields_cannot_bleed(self):
        with pytest.raises(ValueError):
            mac_address(1 << 16, 0)
        with pytest.raises(ValueError):
            mac_address(0, 1 << 24)
        with pytest.raises(ValueError):
            mac_address(-1, 0)

    def test_prefix(self):
        assert mac_address(0, 0) >> 40 == NIC_MAC_PREFIX


class TestTrunkMac:
    def test_deterministic_and_distinct(self):
        assert trunk_mac(2, 5) == trunk_mac(2, 5)
        assert trunk_mac(2, 5) != trunk_mac(5, 2)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            trunk_mac(1 << 24, 0)
        with pytest.raises(ValueError):
            trunk_mac(0, 1 << 16)
        with pytest.raises(ValueError):
            trunk_mac(-1, 0)

    def test_prefix(self):
        assert trunk_mac(0, 0) >> 40 == TRUNK_MAC_PREFIX


class TestNamespacesDisjoint:
    def test_prefixes_differ_in_local_bit_space(self):
        # Both locally administered (bit 0x02 of the first octet), but
        # distinct octets: structurally disjoint 48-bit spaces.
        assert NIC_MAC_PREFIX != TRUNK_MAC_PREFIX
        assert NIC_MAC_PREFIX & 0x02 and TRUNK_MAC_PREFIX & 0x02

    def test_collision_regression_sweep(self):
        """No (node, rail) NIC MAC may equal any (switch, port) trunk MAC
        — including the aliasing shapes that caused the original bug."""
        nics = {
            mac_address(node, rail)
            for node in (0, 1, 2, 255, 65535)
            for rail in (0, 1, 2)
        }
        trunks = {
            trunk_mac(sw, port)
            for sw in (0, 1, 2, 255, (1 << 24) - 1)
            for port in (0, 1, 2, 65535)
        }
        assert nics.isdisjoint(trunks)
