"""SwitchPort backpressure accounting: paused frames, depth, ECN marks.

Drives one output port into overflow with a 3-into-1 fan-in and checks
the port-level counters the congestion subsystem builds on:
``paused_frames`` / ``dropped_queue_full`` (lossless vs lossy),
``peak_queue_depth``, and the rule that only *admitted* frames are ever
CE-marked.
"""

from repro.ethernet import (
    ECN_CE,
    Frame,
    LinkParams,
    MultiEdgeHeader,
    Nic,
    NicParams,
    Switch,
    SwitchParams,
    connect_nic_to_switch,
    mac_address,
)
from repro.sim import RngRegistry, Simulator

SENDERS = 3
RECEIVER = SENDERS  # last port
FRAMES_EACH = 32
PAYLOAD = 1000


def build_fan_in(switch_params: SwitchParams):
    """3 sender NICs and 1 receiver NIC on one switch."""
    sim = Simulator()
    rng = RngRegistry(0)
    switch = Switch(sim, switch_params)
    nics = []
    for i in range(SENDERS + 1):
        nic = Nic(
            sim, NicParams(tx_jitter_ns=0), mac=mac_address(i, 0), rng=rng,
            name=f"nic{i}",
        )
        connect_nic_to_switch(
            sim, nic, switch, i, LinkParams(propagation_ns=100), rng
        )
        nic.disable_interrupts()
        nics.append(nic)
    # Teach the switch the receiver's port so the fan-in unicasts.
    switch.learn(nics[RECEIVER].mac, RECEIVER)
    return sim, switch, nics


def blast(sim, nics, seq_base=0):
    """Every sender transmits FRAMES_EACH frames at the receiver at once."""
    sent = 0
    for s in range(SENDERS):
        for k in range(FRAMES_EACH):
            nics[s].transmit(
                Frame(
                    src_mac=nics[s].mac,
                    dst_mac=nics[RECEIVER].mac,
                    header=MultiEdgeHeader(
                        payload_length=PAYLOAD, seq=seq_base + sent
                    ),
                    payload=bytes(PAYLOAD),
                )
            )
            sent += 1
    sim.run()
    return sent


def test_lossy_overflow_drops_and_records_peak():
    sim, switch, nics = build_fan_in(
        SwitchParams(ports=SENDERS + 1, output_queue_frames=8)
    )
    sent = blast(sim, nics)
    port = switch.port(RECEIVER)
    received = len(nics[RECEIVER].poll()[0])
    assert port.dropped_queue_full > 0
    assert port.paused_frames == 0
    assert received == sent - port.dropped_queue_full
    assert port.tx_frames == received
    # The queue filled to its limit (plus the frame being serialised).
    assert 8 <= port.peak_queue_depth <= 9
    assert switch.dropped_total == port.dropped_queue_full


def test_lossless_overflow_pauses_instead_of_dropping():
    sim, switch, nics = build_fan_in(
        SwitchParams(ports=SENDERS + 1, output_queue_frames=8, lossless=True)
    )
    sent = blast(sim, nics)
    port = switch.port(RECEIVER)
    assert port.dropped_queue_full == 0
    assert port.paused_frames > 0
    # Every frame eventually drains through the paused stage.
    assert len(nics[RECEIVER].poll()[0]) == sent
    assert port.tx_frames == sent
    # The overflow stage is unbounded, so the peak exceeds the queue limit.
    assert port.peak_queue_depth > 8
    assert port.queue_depth == 0  # fully drained


def test_ecn_marks_only_admitted_frames():
    sim, switch, nics = build_fan_in(
        SwitchParams(
            ports=SENDERS + 1, output_queue_frames=8, ecn_threshold_frames=4
        )
    )
    sent = blast(sim, nics)
    port = switch.port(RECEIVER)
    frames, _ = nics[RECEIVER].poll()
    marked = sum(1 for f in frames if f.header.flags & ECN_CE)
    assert port.dropped_queue_full > 0  # overflow happened
    assert marked > 0
    # Conservation: every mark the port made arrived at the receiver —
    # dropped frames are never marked, so marks are never lost.
    assert marked == port.ce_marked == switch.ce_marked_total
    assert marked <= sent - port.dropped_queue_full


def test_ecn_marking_in_lossless_overflow_stage():
    sim, switch, nics = build_fan_in(
        SwitchParams(
            ports=SENDERS + 1, output_queue_frames=8, lossless=True,
            ecn_threshold_frames=4,
        )
    )
    sent = blast(sim, nics)
    port = switch.port(RECEIVER)
    frames, _ = nics[RECEIVER].poll()
    marked = sum(1 for f in frames if f.header.flags & ECN_CE)
    assert len(frames) == sent
    assert port.paused_frames > 0
    # Paused (backpressured) frames are deep in the queue by definition,
    # so they all carry the mark; marks still equal the port's count.
    assert marked == port.ce_marked >= port.paused_frames
