"""Unit tests for the link/cable model."""

import pytest

from repro.ethernet import Cable, Frame, Link, LinkParams, MultiEdgeHeader
from repro.sim import RngRegistry, Simulator


class Sink:
    mac = 99

    def __init__(self):
        self.frames = []
        self.times = []

    def on_frame(self, frame):
        self.frames.append(frame)


class TimedSink(Sink):
    def __init__(self, sim):
        super().__init__()
        self.sim = sim

    def on_frame(self, frame):
        super().on_frame(frame)
        self.times.append(self.sim.now)


def make_frame(n=100):
    return Frame(
        src_mac=1,
        dst_mac=2,
        header=MultiEdgeHeader(payload_length=n),
        payload=bytes(n),
    )


def test_link_delivers_after_propagation():
    sim = Simulator()
    link = Link(sim, LinkParams(propagation_ns=700))
    sink = TimedSink(sim)
    link.attach_receiver(sink)
    link.deliver(make_frame())
    sim.run()
    assert sink.times == [700]
    assert link.frames_delivered == 1


def test_link_without_receiver_raises():
    sim = Simulator()
    link = Link(sim, LinkParams())
    with pytest.raises(RuntimeError):
        link.deliver(make_frame())


def test_link_fifo_even_with_same_time_sends():
    sim = Simulator()
    link = Link(sim, LinkParams(propagation_ns=10))
    sink = Sink()
    link.attach_receiver(sink)
    frames = [make_frame() for _ in range(5)]
    for f in frames:
        link.deliver(f)
    sim.run()
    assert [f.uid for f in sink.frames] == [f.uid for f in frames]


def test_link_outage_drops_frames():
    sim = Simulator()
    link = Link(sim, LinkParams(propagation_ns=10))
    sink = Sink()
    link.attach_receiver(sink)
    link.fail_for(1000)
    assert link.failed
    link.deliver(make_frame())
    sim.run(until=1001)
    assert sink.frames == []
    assert link.frames_lost_outage == 1
    assert not link.failed
    link.deliver(make_frame())
    sim.run()
    assert len(sink.frames) == 1


def test_link_ber_zero_never_corrupts():
    sim = Simulator()
    link = Link(sim, LinkParams(bit_error_rate=0.0), RngRegistry(1))
    sink = Sink()
    link.attach_receiver(sink)
    for _ in range(200):
        link.deliver(make_frame())
    sim.run()
    assert all(not f.corrupted for f in sink.frames)
    assert link.frames_corrupted == 0


def test_link_high_ber_corrupts_most():
    sim = Simulator()
    # 1e-4 per bit over ~1100 bits => ~10% corruption odds per frame min,
    # use a large BER so corruption is near-certain.
    link = Link(sim, LinkParams(bit_error_rate=1e-2), RngRegistry(1))
    sink = Sink()
    link.attach_receiver(sink)
    for _ in range(50):
        link.deliver(make_frame())
    sim.run()
    assert link.frames_corrupted == 50
    assert all(f.corrupted for f in sink.frames)


def test_link_moderate_ber_statistics():
    sim = Simulator()
    link = Link(sim, LinkParams(bit_error_rate=1e-6), RngRegistry(7), name="L")
    sink = Sink()
    link.attach_receiver(sink)
    n = 2000
    for _ in range(n):
        link.deliver(make_frame(100))  # ~1500 wire bits
    sim.run()
    # Expected corruption probability per frame ~= 1 - (1-1e-6)^(176*8) ~ 0.14%
    assert 0 < link.frames_corrupted < n * 0.02


def test_link_params_validation():
    with pytest.raises(ValueError):
        LinkParams(speed_bps=0)
    with pytest.raises(ValueError):
        LinkParams(propagation_ns=-1)
    with pytest.raises(ValueError):
        LinkParams(bit_error_rate=1.5)


def test_cable_bidirectional():
    sim = Simulator()
    a, b = Sink(), Sink()
    a.mac, b.mac = 1, 2
    cable = Cable(sim, a, b, LinkParams(propagation_ns=5))
    cable.link_from(a).deliver(make_frame())
    cable.link_from(b).deliver(make_frame())
    sim.run()
    assert len(a.frames) == 1 and len(b.frames) == 1


def test_cable_link_from_unknown_endpoint():
    sim = Simulator()
    a, b, c = Sink(), Sink(), Sink()
    cable = Cable(sim, a, b, LinkParams())
    with pytest.raises(ValueError):
        cable.link_from(c)


def test_cable_fail_for_affects_both_directions():
    sim = Simulator()
    a, b = Sink(), Sink()
    cable = Cable(sim, a, b, LinkParams())
    cable.fail_for(100)
    cable.link_from(a).deliver(make_frame())
    cable.link_from(b).deliver(make_frame())
    sim.run()
    assert a.frames == [] and b.frames == []
