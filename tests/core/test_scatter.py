"""Tests for scatter-gather write operations (the DSM diff carrier)."""

import pytest

from repro.bench.cluster import make_cluster
from repro.core.messages import (
    SCATTER_RECORD_HEADER,
    decode_scatter_records,
    encode_scatter_records,
)
from repro.ethernet import max_payload_per_frame


def pair(config="1L-1G"):
    cluster = make_cluster(config, nodes=2)
    a, b = cluster.connect(0, 1)
    return cluster, a, b


def run(cluster, gen, limit_ms=5000):
    proc = cluster.sim.process(gen)
    return cluster.sim.run_until_done(proc, limit=limit_ms * 1_000_000)


class TestCodec:
    def test_roundtrip(self):
        segs = [(0x1000, b"abc"), (0x2000, b"defgh")]
        assert decode_scatter_records(encode_scatter_records(segs)) == segs

    def test_wire_size(self):
        segs = [(1, b"xy")]
        assert len(encode_scatter_records(segs)) == SCATTER_RECORD_HEADER + 2

    def test_empty(self):
        assert decode_scatter_records(b"") == []


class TestScatterWrites:
    def test_sparse_segments_land(self):
        cluster, a, b = pair()
        dst = b.node.memory.alloc(10_000)
        segments = [
            (dst + 0, b"head"),
            (dst + 5000, b"middle"),
            (dst + 9996, b"tail"),
        ]

        def app():
            h = yield from a.rdma_write_scatter(segments)
            yield from h.wait()

        run(cluster, app())
        assert b.node.memory.read(dst, 4) == b"head"
        assert b.node.memory.read(dst + 5000, 6) == b"middle"
        assert b.node.memory.read(dst + 9996, 4) == b"tail"
        # Untouched gap bytes stay zero.
        assert b.node.memory.read(dst + 100, 4) == b"\x00" * 4

    def test_many_small_segments_one_op(self):
        cluster, a, b = pair()
        dst = b.node.memory.alloc(65536)
        segments = [
            (dst + i * 64, bytes([i % 256]) * 8) for i in range(500)
        ]

        def app():
            h = yield from a.rdma_write_scatter(segments)
            yield from h.wait()

        run(cluster, app())
        for i in range(500):
            assert b.node.memory.read(dst + i * 64, 8) == bytes([i % 256]) * 8
        # 500 tiny writes travel in far fewer frames than 500 ops would.
        assert a.stats.ops_submitted == 1
        assert a.stats.data_frames_sent <= 10

    def test_large_segment_splits_across_frames(self):
        cluster, a, b = pair()
        size = 3 * max_payload_per_frame()
        dst = b.node.memory.alloc(size)
        payload = bytes(i % 256 for i in range(size))

        def app():
            h = yield from a.rdma_write_scatter([(dst, payload)])
            yield from h.wait()

        run(cluster, app())
        assert b.node.memory.read(dst, size) == payload
        assert a.stats.data_frames_sent >= 3

    def test_scatter_on_two_rails(self):
        cluster, a, b = pair("2Lu-1G")
        dst = b.node.memory.alloc(200_000)
        segments = [
            (dst + i * 400, bytes([(i * 7) % 256]) * 16) for i in range(400)
        ]

        def app():
            h = yield from a.rdma_write_scatter(segments)
            yield from h.wait()

        run(cluster, app())
        for i in range(0, 400, 37):
            assert (
                b.node.memory.read(dst + i * 400, 16)
                == bytes([(i * 7) % 256]) * 16
            )

    def test_empty_scatter_rejected(self):
        cluster, a, b = pair()

        def app():
            yield from a.rdma_write_scatter([])

        with pytest.raises(Exception):
            run(cluster, app())

    def test_scatter_with_notify(self):
        from repro.ethernet import OpFlags

        cluster, a, b = pair()
        dst = b.node.memory.alloc(64)

        def sender():
            h = yield from a.rdma_write_scatter(
                [(dst, b"notify-me")], flags=OpFlags.NOTIFY
            )
            yield from h.wait()

        def receiver():
            note = yield from b.wait_notification()
            return note

        cluster.sim.process(sender())
        proc = cluster.sim.process(receiver())
        note = cluster.sim.run_until_done(proc, limit=10_000_000_000)
        assert note.src_node == 0
