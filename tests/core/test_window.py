"""Unit tests for the sliding window and receive tracker."""

import pytest

from repro.core import ReceiveTracker, SendWindow
from repro.ethernet import Frame, MultiEdgeHeader


def seq_frame(seq):
    return Frame(
        src_mac=1, dst_mac=2, header=MultiEdgeHeader(seq=seq, payload_length=0)
    )


class TestSendWindow:
    def test_initial_state(self):
        w = SendWindow(8)
        assert w.can_send and w.available == 8 and w.in_flight_count == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SendWindow(0)

    def test_allocate_seq_monotonic(self):
        w = SendWindow(8)
        assert [w.allocate_seq() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_register_fills_window(self):
        w = SendWindow(2)
        for _ in range(2):
            s = w.allocate_seq()
            w.register(seq_frame(s), op_id=1, now=0)
        assert not w.can_send
        with pytest.raises(RuntimeError):
            w.register(seq_frame(99), op_id=1, now=0)

    def test_cumulative_ack_frees_prefix(self):
        w = SendWindow(8)
        for _ in range(5):
            s = w.allocate_seq()
            w.register(seq_frame(s), op_id=1, now=0)
        freed = w.on_ack(3)
        assert sorted(r.frame.header.seq for r in freed) == [0, 1, 2]
        assert w.in_flight_count == 2
        # Stale ack frees nothing.
        assert w.on_ack(3) == []
        assert w.on_ack(2) == []

    def test_get_for_retransmit(self):
        w = SendWindow(8)
        s = w.allocate_seq()
        w.register(seq_frame(s), op_id=1, now=0)
        rec = w.get_for_retransmit(0)
        assert rec is not None
        w.on_ack(1)
        assert w.get_for_retransmit(0) is None

    def test_retransmit_lookups_are_pure(self):
        """Lookups never bump the retransmit counter — only the caller's
        enqueue site does, so repeated queries can't inflate the count."""
        w = SendWindow(8)
        s = w.allocate_seq()
        w.register(seq_frame(s), op_id=1, now=0)
        for _ in range(5):
            rec = w.get_for_retransmit(0)
            assert rec is not None
            rec2 = w.last_unacked()
            assert rec2 is rec
        assert rec.retransmits == 0

    def test_last_and_oldest_unacked(self):
        w = SendWindow(8)
        for _ in range(3):
            s = w.allocate_seq()
            w.register(seq_frame(s), op_id=1, now=0)
        assert w.last_unacked().frame.header.seq == 2
        assert w.oldest_unacked().frame.header.seq == 0
        w.on_ack(3)
        assert w.last_unacked() is None
        assert w.oldest_unacked() is None


class TestReceiveTracker:
    def test_in_order_stream(self):
        t = ReceiveTracker()
        for seq in range(5):
            is_new, in_order = t.on_frame(seq)
            assert is_new and in_order
        assert t.cum_ack == 5
        assert not t.has_gap()

    def test_out_of_order_absorbed(self):
        t = ReceiveTracker()
        assert t.on_frame(1) == (True, False)
        assert t.has_gap()
        assert t.on_frame(0) == (True, True)
        assert t.cum_ack == 2
        assert not t.has_gap()

    def test_duplicate_below_expected(self):
        t = ReceiveTracker()
        t.on_frame(0)
        assert t.on_frame(0) == (False, False)

    def test_duplicate_beyond_expected(self):
        t = ReceiveTracker()
        t.on_frame(2)
        assert t.on_frame(2) == (False, False)

    def test_missing_list(self):
        t = ReceiveTracker()
        for seq in (1, 3, 5):
            t.on_frame(seq)
        assert t.missing() == [0, 2, 4]

    def test_missing_respects_limit(self):
        t = ReceiveTracker()
        t.on_frame(100)
        assert t.missing(limit=10) == list(range(10))

    def test_missing_wide_gap_is_bounded(self):
        """A burst loss spanning 100k seqs must cost O(limit), not O(gap).

        Instrumented via a counting set: pre-fix the scan probed every
        sequence number up to the gap's top; post-fix it stops after
        ``limit`` gaps.
        """

        class CountingSet(set):
            probes = 0

            def __contains__(self, item):
                CountingSet.probes += 1
                return super().__contains__(item)

        t = ReceiveTracker()
        t.on_frame(100_000)  # everything below is one giant gap
        t._beyond = CountingSet(t._beyond)
        CountingSet.probes = 0
        assert t.missing(limit=64) == list(range(64))
        assert CountingSet.probes <= 64

    def test_missing_empty_when_contiguous(self):
        t = ReceiveTracker()
        for seq in range(4):
            t.on_frame(seq)
        assert t.missing() == []

    def test_interleaved_two_rail_pattern(self):
        """Round-robin arrival with pairwise swaps: every other frame OOO."""
        t = ReceiveTracker()
        order = [1, 0, 3, 2, 5, 4]
        flags = [t.on_frame(s)[1] for s in order]
        assert flags == [False, True, False, True, False, True]
        assert t.cum_ack == 6
