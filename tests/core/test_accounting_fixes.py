"""Regression tests for the protocol accounting bugs the fuzzer flushed out.

Each test here failed before its fix:

* coarse-timeout retransmit double-counting (counters bumped on lookup
  rather than at the enqueue site),
* pump CPU over-charge when the TX ring stalls mid-batch (stall time was
  billed as protocol work),
* control frames (explicit ACK / NACK) perturbing the data-plane striping
  state (byte-deficit counters and cursor),
* cross-fenced reads deadlocking both endpoints (read responses parked
  behind the local forward fence).
"""

import copy

from repro.bench.cluster import make_cluster
from repro.ethernet import OpFlags
from repro.host import tigon3_params


def _drive(cluster, procs, limit=10**10):
    for proc in [cluster.sim.process(p) for p in procs]:
        cluster.sim.run_until_done(proc, limit=limit)
    cluster.sim.run()


def _bulk_write(handle, src, dst, size):
    def proc():
        h = yield from handle.rdma_write(src, dst, size)
        yield from h.wait()

    return proc()


class TestCoarseTimeoutCounting:
    def test_repeated_timer_fire_counts_once(self):
        """A timer that fires again while the seq is still queued must not
        inflate the retransmit counters (pre-fix: every fire counted)."""
        c = make_cluster("1L-1G", nodes=2, seed=1, synthetic_payloads=True)
        a, _ = c.connect(0, 1)
        conn = a.conn
        src = c.nodes[0].memory.alloc(1024)
        dst = c.nodes[1].memory.alloc(1024)

        def submit():
            yield from a.rdma_write(src, dst, 1024)

        c.sim.run_until_done(c.sim.process(submit()), limit=10**9)
        # Freeze the fabric so the frame can never be acked or re-sent.
        for nic in c.nodes[0].nics:
            nic._tx_ring_used = nic.params.tx_ring_frames
        assert conn.window.inflight, "expected an unacked frame in flight"
        conn._on_coarse_timeout()
        conn._on_coarse_timeout()
        conn._on_coarse_timeout()
        rec = conn.window.oldest_unacked()
        assert conn.stats.timeout_retransmits == 1
        assert rec.retransmits == 1
        assert list(conn._retransmit_q).count(rec.frame.header.seq) == 1


class TestPumpStallAccounting:
    def test_ring_stall_reclassified_not_charged_as_protocol(self):
        """With a tiny TX ring the pump stalls mid-batch; the surplus charge
        must move to the ``stall.tx_ring`` tag and the protocol charge must
        equal frames actually sent x per-frame cost."""
        c = make_cluster(
            "1L-1G",
            nodes=2,
            seed=1,
            synthetic_payloads=True,
            nic_factory=lambda: tigon3_params(tx_ring_frames=4),
        )
        a, _ = c.connect(0, 1)
        src = c.nodes[0].memory.alloc(256 * 1024)
        dst = c.nodes[1].memory.alloc(256 * 1024)
        _drive(c, [_bulk_write(a, src, dst, 256 * 1024)])

        stats = a.conn.stats
        per_frame = c.nodes[0].params.per_frame_send_ns
        assert stats.pump_stalled_ns > 0, "tiny ring should stall the pump"
        acct = c.nodes[0].accounting
        assert acct.total("stall.tx_ring") == stats.pump_stalled_ns
        # Conservation: protocol pump charge covers exactly the frames sent.
        sent = stats.data_frames_sent + stats.retransmitted_frames
        assert stats.pump_charged_ns == sent * per_frame

    def test_no_stall_without_ring_pressure(self):
        c = make_cluster("1L-1G", nodes=2, seed=1, synthetic_payloads=True)
        a, _ = c.connect(0, 1)
        src = c.nodes[0].memory.alloc(64 * 1024)
        dst = c.nodes[1].memory.alloc(64 * 1024)
        _drive(c, [_bulk_write(a, src, dst, 64 * 1024)])
        stats = a.conn.stats
        per_frame = c.nodes[0].params.per_frame_send_ns
        sent = stats.data_frames_sent + stats.retransmitted_frames
        assert stats.pump_charged_ns == sent * per_frame


class TestControlRailIsolation:
    def test_explicit_ack_leaves_striping_state_alone(self):
        """Pre-fix, control frames called ``next_rail(84)`` and charged the
        data-plane deficit counters, skewing subsequent striping."""
        c = make_cluster("2Lu-1G", nodes=2, seed=1, synthetic_payloads=True)
        _, b = c.connect(0, 1)
        conn = b.conn  # receiver side emits the explicit acks
        striping = conn.striping
        before_bytes = copy.deepcopy(striping._assigned_bytes)
        before_cursor = striping._cursor
        acks_before = conn.stats.explicit_acks_sent
        conn._send_explicit_ack()
        assert conn.stats.explicit_acks_sent == acks_before + 1
        assert striping._assigned_bytes == before_bytes
        assert striping._cursor == before_cursor

    def test_control_rail_rotates_and_skips_full_rings(self):
        c = make_cluster("2Lu-1G", nodes=2, seed=1, synthetic_payloads=True)
        a, _ = c.connect(0, 1)
        striping = a.conn.striping
        first = striping.control_rail()
        second = striping.control_rail()
        assert {first, second} == {0, 1}, "control frames rotate across rails"
        # Fill rail picked next; control_rail must route around it.
        nxt = striping.control_rail()
        nic = a.conn.nics[nxt]
        nic._tx_ring_used = nic.params.tx_ring_frames
        assert striping.control_rail() != nxt

    def test_single_rail_control_uses_data_rail(self):
        c = make_cluster("1L-1G", nodes=2, seed=1, synthetic_payloads=True)
        a, _ = c.connect(0, 1)
        assert a.conn.striping.control_rail() == 0


class TestReadFenceDeadlock:
    def test_cross_fenced_reads_complete(self):
        """Two endpoints issue forward-fenced reads of each other: the read
        responses must bypass the local fence or both sides deadlock
        (found by the fuzzer; see repro.verify.fuzz)."""
        c = make_cluster("2L-1G", nodes=2, seed=1)
        a, b = c.connect(0, 1)
        buf0 = c.nodes[0].memory.alloc(32 * 1024)
        buf1 = c.nodes[1].memory.alloc(32 * 1024)

        def reader(handle, local, remote):
            h1 = yield from handle.rdma_read(local, remote, 8_192)
            yield from h1.wait()
            h2 = yield from handle.rdma_read(
                local, remote, 16_384, flags=OpFlags.FENCE_FORWARD
            )
            yield from h2.wait()

        _drive(c, [reader(a, buf0, buf1), reader(b, buf1, buf0)])
        assert a.conn.stats.ops_completed >= 2
        assert b.conn.stats.ops_completed >= 2

    def test_response_jumps_fence_blocked_queue(self):
        """A READ_RESP submitted while a later op is fence-blocked must slot
        ahead of the blocked descriptors in the unsent queue."""
        c = make_cluster("1L-1G", nodes=2, seed=1)
        a, b = c.connect(0, 1)
        conn = b.conn
        buf0 = c.nodes[0].memory.alloc(4096)
        buf1 = c.nodes[1].memory.alloc(4096)

        def submit_only():
            # Fenced read followed by a write: the write is fence-blocked.
            yield from b.rdma_read(buf1, buf0, 1024, flags=OpFlags.FENCE_FORWARD)
            yield from b.rdma_write(buf1, buf0, 1024)

        c.sim.run_until_done(c.sim.process(submit_only()), limit=10**9)
        # Peer's READ_REQ arrives: the response lands ahead of the blocked
        # write (frames of the fenced read itself may already be gone).
        def peer_read():
            h = yield from a.rdma_read(buf0, buf1, 2048)
            yield from h.wait()

        c.sim.run_until_done(c.sim.process(peer_read()), limit=10**10)
        c.sim.run()
        assert a.conn.stats.ops_completed >= 1
