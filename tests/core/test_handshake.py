"""Tests for wire-level connection setup and teardown."""

import pytest

from repro.bench.cluster import make_cluster
from repro.core import HandshakeError, close_connection, dial, enable_listener
from repro.core.handshake import _conn_id_for
from repro.ethernet import LinkParams


def fresh(config="1L-1G", nodes=2, **kw):
    cluster = make_cluster(config, nodes=nodes, **kw)
    for stack in cluster.stacks:
        enable_listener(stack)
    return cluster


def test_dial_creates_both_endpoints():
    cluster = fresh()
    a, b = cluster.stacks

    def app():
        handle = yield from dial(a, peer_node_id=1)
        return handle

    proc = cluster.sim.process(app())
    handle = cluster.sim.run_until_done(proc, limit=10_000_000_000)
    conn_id = handle.conn.conn_id
    assert conn_id in a.protocol.connections
    assert conn_id in b.protocol.connections
    assert b.protocol.connections[conn_id].peer_node_id == 0


def test_dialed_connection_carries_data():
    cluster = fresh()
    a, b = cluster.stacks
    size = 20_000
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 256 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        handle = yield from dial(a, 1)
        h = yield from handle.rdma_write(src, dst, size)
        yield from h.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=30_000_000_000)
    assert b.node.memory.read(dst, size) == payload


def test_dial_negotiates_rails():
    cluster = fresh("2L-1G")
    a = cluster.stacks[0]

    def app():
        handle = yield from dial(a, 1)
        return handle

    proc = cluster.sim.process(app())
    handle = cluster.sim.run_until_done(proc, limit=10_000_000_000)
    assert len(handle.conn.nics) == 2
    assert len(handle.conn.peer_macs) == 2


def test_dial_survives_lost_syn():
    # Heavy bit errors: some SYNs/SYN_ACKs die; retransmission recovers.
    cluster = fresh(link=LinkParams(speed_bps=1e9, bit_error_rate=2e-4))
    a = cluster.stacks[0]

    def app():
        handle = yield from dial(a, 1)
        return handle

    proc = cluster.sim.process(app())
    handle = cluster.sim.run_until_done(proc, limit=120_000_000_000)
    assert handle.conn.conn_id in cluster.stacks[1].protocol.connections


def test_dial_unreachable_peer_raises():
    cluster = fresh()
    a = cluster.stacks[0]
    # Cut node 0's uplink for the whole experiment.
    a.node.nics[0].tx_link.fail_for(10**12)

    def app():
        yield from dial(a, 1)

    proc = cluster.sim.process(app())
    with pytest.raises(Exception, match="SYN_ACK"):
        cluster.sim.run_until_done(proc, limit=600_000_000_000)


def test_concurrent_dials_get_distinct_connections():
    cluster = fresh(nodes=3)
    a = cluster.stacks[0]
    handles = []

    def app():
        h1 = yield from dial(a, 1)
        h2 = yield from dial(a, 2)
        handles.extend([h1, h2])

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=30_000_000_000)
    assert handles[0].conn.conn_id != handles[1].conn.conn_id
    assert handles[0].peer_node_id == 1
    assert handles[1].peer_node_id == 2


def test_conn_id_uniqueness_per_initiator():
    ids = {_conn_id_for(i, c) for i in range(16) for c in range(64)}
    assert len(ids) == 16 * 64


def test_close_rejects_new_operations():
    cluster = fresh()
    a, b = cluster.stacks
    src = a.node.memory.alloc(64)
    dst = b.node.memory.alloc(64)

    def app():
        handle = yield from dial(a, 1)
        h = yield from handle.rdma_write(src, dst, 64)
        yield from h.wait()
        yield from close_connection(a, handle)
        return handle

    proc = cluster.sim.process(app())
    handle = cluster.sim.run_until_done(proc, limit=60_000_000_000)
    assert handle.conn.closed

    def late():
        yield from handle.rdma_write(src, dst, 64)

    late_proc = cluster.sim.process(late())
    with pytest.raises(Exception, match="closed"):
        cluster.sim.run_until_done(late_proc, limit=10_000_000_000)


def test_close_marks_peer_closed_too():
    cluster = fresh()
    a, b = cluster.stacks

    def app():
        handle = yield from dial(a, 1)
        yield from close_connection(a, handle)
        return handle.conn.conn_id

    proc = cluster.sim.process(app())
    conn_id = cluster.sim.run_until_done(proc, limit=60_000_000_000)
    cluster.sim.run(until=cluster.sim.now + 10_000_000)
    assert b.protocol.connections[conn_id].closed


def test_closed_connection_drops_stray_data_frames():
    cluster = fresh()
    a, b = cluster.stacks
    size = 64
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)

    def app():
        handle = yield from dial(a, 1)
        yield from close_connection(a, handle)
        # Bypass the API guard and push a stale frame at the peer.
        conn_b = b.protocol.connections[handle.conn.conn_id]
        before = conn_b.frames_after_close
        from repro.core.messages import make_data_frame

        frame = make_data_frame(
            a.node.nics[0].mac, b.node.nics[0].mac,
            handle.conn.conn_id, seq=999, ack=0, op_id=1, op_seq=0,
            op_flags=0, remote_address=dst, op_length=size,
            payload=bytes(size),
        )
        a.node.nics[0].transmit(frame)
        yield 5_000_000
        return before, conn_b

    proc = cluster.sim.process(app())
    before, conn_b = cluster.sim.run_until_done(proc, limit=60_000_000_000)
    assert conn_b.frames_after_close == before + 1
