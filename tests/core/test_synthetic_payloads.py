"""Synthetic (length-only) payload mode must not change any result.

``ProtocolParams.synthetic_payloads`` drops payload *bytes* from the hot
path; every cost is computed from lengths, so timing, counters, and derived
metrics must be bit-identical to a run that shuffles real bytes.
"""

import dataclasses

from repro.bench.cluster import make_cluster
from repro.bench.micro import run_micro
from repro.ethernet.frame import (
    ETH_OVERHEAD_BYTES,
    MULTIEDGE_HEADER_BYTES,
    Frame,
    MultiEdgeHeader,
    max_payload_per_frame,
)


def _point(synthetic: bool, benchmark: str = "one-way", size: int = 65536):
    cluster = make_cluster(
        "1L-1G", nodes=2, seed=0, synthetic_payloads=synthetic
    )
    return run_micro(benchmark, cluster, size, iterations=4)


def test_synthetic_payload_run_is_bit_identical_to_real_bytes():
    real = dataclasses.asdict(_point(False))
    synth = dataclasses.asdict(_point(True))
    assert synth == real


def test_synthetic_ping_pong_is_bit_identical_too():
    real = dataclasses.asdict(_point(False, "ping-pong", 4096))
    synth = dataclasses.asdict(_point(True, "ping-pong", 4096))
    assert synth == real


def test_length_only_frame_carries_wire_size_without_bytes():
    header = MultiEdgeHeader(payload_length=1000)
    frame = Frame(src_mac=1, dst_mac=2, header=header, payload=None)
    assert frame.payload is None
    assert frame.mac_payload_bytes == MULTIEDGE_HEADER_BYTES + 1000
    assert frame.wire_bytes == frame.mac_payload_bytes + ETH_OVERHEAD_BYTES
    # Same wire size as the equivalent real-bytes frame.
    real = Frame(
        src_mac=1,
        dst_mac=2,
        header=MultiEdgeHeader(payload_length=1000),
        payload=bytes(1000),
    )
    assert real.wire_bytes == frame.wire_bytes


def test_max_payload_matches_header_size():
    assert max_payload_per_frame() == 1500 - MULTIEDGE_HEADER_BYTES
    assert MULTIEDGE_HEADER_BYTES == 36
