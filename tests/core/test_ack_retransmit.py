"""Unit tests for ack policy and retransmit timer."""

import pytest

from repro.core import AckPolicy, AckPolicyParams, RetransmitParams, RetransmitTimer
from repro.sim import Simulator


class TestAckPolicy:
    def test_explicit_ack_due_after_threshold(self):
        p = AckPolicy(AckPolicyParams(ack_every_frames=3))
        assert not p.on_data_frame()
        assert not p.on_data_frame()
        assert p.on_data_frame()

    def test_piggyback_resets_counter(self):
        p = AckPolicy(AckPolicyParams(ack_every_frames=3))
        p.on_data_frame()
        p.on_data_frame()
        p.on_ack_emitted(2, piggybacked=True)
        assert not p.on_data_frame()
        assert p.frames_pending_ack == 1

    def test_delayed_ack_needed_only_with_pending(self):
        p = AckPolicy(AckPolicyParams(ack_every_frames=10))
        assert not p.needs_delayed_ack(0)
        p.on_data_frame()
        assert p.needs_delayed_ack(1)
        p.on_ack_emitted(1, piggybacked=False)
        assert not p.needs_delayed_ack(1)

    def test_delayed_ack_when_cum_ack_advanced_silently(self):
        p = AckPolicy(AckPolicyParams())
        p.on_ack_emitted(5, piggybacked=True)
        assert not p.needs_delayed_ack(5)
        assert p.needs_delayed_ack(9)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            AckPolicyParams(ack_every_frames=0)
        with pytest.raises(ValueError):
            AckPolicyParams(ack_delay_ns=-1)


class TestRetransmitTimer:
    def test_fires_after_timeout(self):
        sim = Simulator()
        fired = []
        t = RetransmitTimer(
            sim, RetransmitParams(coarse_timeout_ns=1000), fired.append_time
            if False
            else (lambda: fired.append(sim.now)),
        )
        t.arm()
        sim.run()
        assert fired == [1000]

    def test_progress_resets(self):
        sim = Simulator()
        fired = []
        t = RetransmitTimer(
            sim, RetransmitParams(coarse_timeout_ns=1000), lambda: fired.append(sim.now)
        )
        t.arm()
        sim.schedule(500, t.on_progress)
        sim.run()
        assert fired == []

    def test_exponential_backoff(self):
        sim = Simulator()
        fired = []

        def on_timeout():
            fired.append(sim.now)
            if len(fired) < 3:
                t.arm()

        t = RetransmitTimer(
            sim,
            RetransmitParams(coarse_timeout_ns=1000, backoff_factor=2),
            on_timeout,
        )
        t.arm()
        sim.run()
        # 1000, then +2000, then +4000.
        assert fired == [1000, 3000, 7000]

    def test_backoff_capped(self):
        sim = Simulator()
        fired = []

        def on_timeout():
            fired.append(sim.now)
            if len(fired) < 4:
                t.arm()

        t = RetransmitTimer(
            sim,
            RetransmitParams(
                coarse_timeout_ns=1000, backoff_factor=10, max_timeout_ns=2000
            ),
            on_timeout,
        )
        t.arm()
        sim.run()
        assert fired == [1000, 3000, 5000, 7000]

    def test_dead_connection_callback(self):
        sim = Simulator()
        dead = []

        def on_timeout():
            t.arm()

        t = RetransmitTimer(
            sim,
            RetransmitParams(coarse_timeout_ns=100, max_retries=3,
                             backoff_factor=1),
            on_timeout,
            on_dead=lambda: dead.append(sim.now),
        )
        t.arm()
        sim.run()
        assert len(dead) == 1
        assert t.timeouts_fired == 4  # 3 retries + the fatal one

    def test_arm_idempotent(self):
        sim = Simulator()
        fired = []
        t = RetransmitTimer(
            sim, RetransmitParams(coarse_timeout_ns=1000), lambda: fired.append(1)
        )
        t.arm()
        t.arm()
        sim.run()
        assert fired == [1]

    def test_params_validation(self):
        with pytest.raises(ValueError):
            RetransmitParams(coarse_timeout_ns=0)
        with pytest.raises(ValueError):
            RetransmitParams(backoff_factor=0)
