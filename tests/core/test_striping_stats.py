"""Unit tests for striping policies and statistics aggregation."""

import pytest

from repro.core import (
    ConnectionStats,
    RoundRobinStriping,
    ShortestQueueStriping,
    SingleRailStriping,
    make_striping_policy,
    merge_stats,
)
from repro.ethernet import Nic, NicParams
from repro.sim import Simulator


def make_nics(sim, count, ring=8):
    return [
        Nic(sim, NicParams(tx_ring_frames=ring, tx_jitter_ns=0), mac=i, name=f"n{i}")
        for i in range(count)
    ]


def fill_ring(nic, n):
    nic._tx_ring_used += n


class TestRoundRobin:
    def test_cycles_through_rails(self):
        sim = Simulator()
        policy = RoundRobinStriping(make_nics(sim, 3))
        assert [policy.next_rail() for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_skips_full_rail(self):
        sim = Simulator()
        nics = make_nics(sim, 2, ring=4)
        policy = RoundRobinStriping(nics)
        fill_ring(nics[0], 4)
        assert [policy.next_rail() for _ in range(3)] == [1, 1, 1]

    def test_returns_none_when_all_full(self):
        sim = Simulator()
        nics = make_nics(sim, 2, ring=2)
        policy = RoundRobinStriping(nics)
        fill_ring(nics[0], 2)
        fill_ring(nics[1], 2)
        assert policy.next_rail() is None


class TestShortestQueue:
    def test_prefers_emptier_rail(self):
        sim = Simulator()
        nics = make_nics(sim, 2, ring=8)
        policy = ShortestQueueStriping(nics)
        fill_ring(nics[0], 5)
        assert policy.next_rail() == 1

    def test_none_when_all_full(self):
        sim = Simulator()
        nics = make_nics(sim, 2, ring=2)
        policy = ShortestQueueStriping(nics)
        fill_ring(nics[0], 2)
        fill_ring(nics[1], 2)
        assert policy.next_rail() is None


class TestSingleRail:
    def test_always_rail_zero(self):
        sim = Simulator()
        policy = SingleRailStriping(make_nics(sim, 2))
        assert [policy.next_rail() for _ in range(4)] == [0, 0, 0, 0]


def test_factory():
    sim = Simulator()
    nics = make_nics(sim, 2)
    assert isinstance(make_striping_policy("round_robin", nics), RoundRobinStriping)
    assert isinstance(
        make_striping_policy("shortest_queue", nics), ShortestQueueStriping
    )
    assert isinstance(make_striping_policy("single_rail", nics), SingleRailStriping)
    with pytest.raises(ValueError):
        make_striping_policy("nope", nics)
    with pytest.raises(ValueError):
        RoundRobinStriping([])


class TestStats:
    def test_extra_frame_fraction(self):
        s = ConnectionStats()
        s.data_frames_sent = 100
        s.explicit_acks_sent = 4
        s.retransmitted_frames = 1
        assert s.extra_frames_sent == 5
        assert s.extra_frame_fraction == pytest.approx(0.05)

    def test_fractions_zero_when_idle(self):
        s = ConnectionStats()
        assert s.extra_frame_fraction == 0.0
        assert s.out_of_order_fraction == 0.0
        assert s.mean_reorder_distance == 0.0

    def test_out_of_order_fraction(self):
        s = ConnectionStats()
        s.data_frames_received = 10
        s.out_of_order_frames = 5
        assert s.out_of_order_fraction == 0.5

    def test_record_buffered_tracks_max(self):
        s = ConnectionStats()
        s.record_buffered(3)
        s.record_buffered(1)
        assert s.buffered_frames == 2
        assert s.max_buffered_frames == 3

    def test_merge(self):
        a, b = ConnectionStats(), ConnectionStats()
        a.data_frames_sent = 10
        b.data_frames_sent = 5
        a.max_buffered_frames = 2
        b.max_buffered_frames = 7
        m = merge_stats([a, b])
        assert m.data_frames_sent == 15
        assert m.max_buffered_frames == 7
