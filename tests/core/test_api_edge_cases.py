"""Edge-case tests for the user-level API layer."""

import pytest

from repro.bench.cluster import make_cluster
from repro.core import MultiEdgeStack
from repro.sim import SimulationError


def pair():
    cluster = make_cluster("1L-1G", nodes=2)
    a, b = cluster.connect(0, 1)
    return cluster, a, b


def test_latency_before_completion_raises():
    cluster, a, b = pair()
    src = a.node.memory.alloc(64)
    dst = b.node.memory.alloc(64)
    holder = {}

    def app():
        h = yield from a.rdma_write(src, dst, 64)
        holder["h"] = h

    proc = cluster.sim.process(app())
    # Run only the submission, not the round trip.
    cluster.sim.run(until=cluster.sim.now + 3_000)
    with pytest.raises(SimulationError):
        _ = holder["h"].latency_ns


def test_wait_on_completed_handle_is_immediate():
    cluster, a, b = pair()
    src = a.node.memory.alloc(64)
    dst = b.node.memory.alloc(64)

    def app():
        h = yield from a.rdma_write(src, dst, 64)
        yield from h.wait()
        t = cluster.sim.now
        yield from h.wait()  # second wait: already complete
        return cluster.sim.now - t

    proc = cluster.sim.process(app())
    delta = cluster.sim.run_until_done(proc, limit=10_000_000_000)
    assert delta == 0


def test_op_ids_unique_across_connections():
    cluster = make_cluster("1L-1G", nodes=3)
    a1, _ = cluster.connect(0, 1)
    a2, _ = cluster.connect(0, 2)
    ids = []

    def app():
        for conn in (a1, a2, a1):
            src = conn.node.memory.alloc(16)
            dst_node = cluster.stacks[conn.peer_node_id].node
            dst = dst_node.memory.alloc(16)
            h = yield from conn.rdma_write(src, dst, 16)
            ids.append(h.op_id)
            yield from h.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=30_000_000_000)
    assert len(set(ids)) == 3


def test_duplicate_connection_id_rejected():
    cluster = make_cluster("1L-1G", nodes=2)
    stack = cluster.stacks[0]
    stack.protocol.create_connection(500, 1, [cluster.nodes[1].nics[0].mac])
    with pytest.raises(ValueError):
        stack.protocol.create_connection(500, 1, [cluster.nodes[1].nics[0].mac])


def test_unknown_connection_frames_counted():
    from repro.core.messages import make_data_frame

    cluster = make_cluster("1L-1G", nodes=2)
    a, b = cluster.nodes
    frame = make_data_frame(
        a.nics[0].mac, b.nics[0].mac, connection_id=9999, seq=0, ack=0,
        op_id=1, op_seq=0, op_flags=0, remote_address=0, op_length=4,
        payload=b"test",
    )
    a.nics[0].transmit(frame)
    cluster.sim.run()
    assert cluster.stacks[1].protocol.unknown_connection_frames == 1


def test_notification_order_is_completion_order():
    from repro.ethernet import OpFlags

    cluster, a, b = pair()
    size = 2000
    src = a.node.memory.alloc(size)
    dsts = [b.node.memory.alloc(size) for _ in range(5)]

    def sender():
        for dst in dsts:
            h = yield from a.rdma_write(src, dst, size, flags=OpFlags.NOTIFY)
        yield 0

    def receiver():
        order = []
        for _ in range(5):
            note = yield from b.wait_notification()
            order.append(note.address)
        return order

    cluster.sim.process(sender())
    proc = cluster.sim.process(receiver())
    order = cluster.sim.run_until_done(proc, limit=30_000_000_000)
    assert order == dsts  # single link: completion follows issue order


def test_stack_node_id_property():
    cluster = make_cluster("1L-1G", nodes=3)
    for i, stack in enumerate(cluster.stacks):
        assert isinstance(stack, MultiEdgeStack)
        assert stack.node_id == i
