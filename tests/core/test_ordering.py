"""Unit tests for delivery ordering and fence semantics."""

from repro.core import FenceDelivery, InOrderDelivery
from repro.ethernet import Frame, FrameType, MultiEdgeHeader, OpFlags


def frame(seq, op_id=1, op_seq=0, flags=0, length=100, op_length=100,
          ftype=FrameType.DATA):
    header = MultiEdgeHeader(
        frame_type=ftype,
        flags=flags,
        seq=seq,
        op_id=op_id,
        op_seq=op_seq,
        op_length=op_length,
        payload_length=length,
    )
    return Frame(src_mac=1, dst_mac=2, header=header,
                 payload=bytes(length) if ftype == FrameType.DATA else None)


class TestInOrderDelivery:
    def test_in_order_applies_immediately(self):
        d = InOrderDelivery()
        apply_now, done = d.on_frame(frame(0))
        assert [f.header.seq for f in apply_now] == [0]
        assert len(done) == 1  # single-frame op completes

    def test_out_of_order_buffers_until_gap_fills(self):
        d = InOrderDelivery()
        a1, _ = d.on_frame(frame(1, op_length=200))
        assert a1 == [] and d.buffered == 1
        a0, done = d.on_frame(frame(0, op_length=200))
        assert [f.header.seq for f in a0] == [0, 1]
        assert d.buffered == 0
        assert len(done) == 1

    def test_long_reorder_chain(self):
        d = InOrderDelivery()
        applied = []
        for seq in [4, 3, 2, 1, 0]:
            batch, _ = d.on_frame(frame(seq, op_length=500))
            applied.extend(f.header.seq for f in batch)
        assert applied == [0, 1, 2, 3, 4]

    def test_multi_op_completion_order(self):
        d = InOrderDelivery()
        # op 0: seqs 0-1; op 1: seqs 2-3.  Deliver op 1 frames first.
        d.on_frame(frame(2, op_id=10, op_seq=1, op_length=200))
        d.on_frame(frame(3, op_id=10, op_seq=1, op_length=200))
        assert d.watermark == 0
        _, done0 = d.on_frame(frame(0, op_id=9, op_seq=0, op_length=200))
        batch, done1 = d.on_frame(frame(1, op_id=9, op_seq=0, op_length=200))
        done_ids = [op.op_id for op in done0 + done1]
        assert done_ids == [9, 10]
        assert d.watermark == 2


class TestFenceDelivery:
    def test_unfenced_applies_on_arrival(self):
        d = FenceDelivery()
        batch, done = d.on_frame(frame(5, op_seq=3))
        assert [f.header.seq for f in batch] == [5]
        assert len(done) == 1

    def test_backward_fence_blocks_until_predecessors_done(self):
        d = FenceDelivery()
        # Op 1 carries a backward fence; op 0 hasn't arrived yet.
        fenced = frame(1, op_id=11, op_seq=1, flags=OpFlags.FENCE_BACKWARD)
        batch, _ = d.on_frame(fenced)
        assert batch == [] and d.buffered == 1
        # Op 0 arrives and completes -> fence lifts, both apply.
        batch, done = d.on_frame(frame(0, op_id=10, op_seq=0))
        assert [f.header.op_seq for f in batch] == [0, 1]
        assert [op.op_id for op in done] == [10, 11]
        assert d.buffered == 0

    def test_backward_fence_with_multiframe_predecessor(self):
        d = FenceDelivery()
        fenced = frame(9, op_id=11, op_seq=1, flags=OpFlags.FENCE_BACKWARD)
        assert d.on_frame(fenced)[0] == []
        # First half of op 0: fence must still hold.
        batch, _ = d.on_frame(frame(0, op_id=10, op_seq=0, op_length=200))
        assert [f.header.op_seq for f in batch] == [0]
        assert d.buffered == 1
        # Second half completes op 0 -> fenced frame applies.
        batch, done = d.on_frame(frame(1, op_id=10, op_seq=0, op_length=200))
        assert [f.header.op_seq for f in batch] == [0, 1]
        assert len(done) == 2

    def test_fence_chain(self):
        d = FenceDelivery()
        f1 = frame(1, op_id=11, op_seq=1, flags=OpFlags.FENCE_BACKWARD)
        f2 = frame(2, op_id=12, op_seq=2, flags=OpFlags.FENCE_BACKWARD)
        assert d.on_frame(f2)[0] == []
        assert d.on_frame(f1)[0] == []
        batch, done = d.on_frame(frame(0, op_id=10, op_seq=0))
        assert [f.header.op_seq for f in batch] == [0, 1, 2]
        assert [op.op_seq for op in done] == [0, 1, 2]

    def test_unfenced_overtakes_unfinished_earlier_op(self):
        """Default behaviour: no ordering unless requested (paper §2.5)."""
        d = FenceDelivery()
        batch, done = d.on_frame(frame(7, op_id=20, op_seq=5))
        assert len(batch) == 1 and len(done) == 1
        assert d.watermark == 0  # earlier ops unseen; that's fine

    def test_read_request_completes_on_apply(self):
        d = FenceDelivery()
        req = frame(0, op_id=30, op_seq=0, length=0, op_length=4096,
                    ftype=FrameType.READ_REQ)
        batch, done = d.on_frame(req)
        assert len(batch) == 1
        assert len(done) == 1 and done[0].is_read_request
