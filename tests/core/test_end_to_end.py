"""End-to-end protocol tests: two full stacks through a switch.

These exercise the whole vertical slice — user API → protocol → kernel →
NIC → link → switch → link → NIC → kernel → protocol → memory — and check
both data correctness and protocol behaviour (acks, fences, reads,
notifications, loss recovery).
"""

import pytest

from repro.bench.cluster import make_cluster
from repro.ethernet import OpFlags
from repro.sim import US


def pair(config="1L-1G", **kw):
    cluster = make_cluster(config, nodes=2, **kw)
    a, b = cluster.connect(0, 1)
    return cluster, a, b


def run_app(cluster, gen, limit_ms=2000):
    proc = cluster.sim.process(gen)
    return cluster.sim.run_until_done(proc, limit=limit_ms * 1_000_000)


def test_small_write_lands_bytes():
    cluster, a, b = pair()
    src = a.node.memory.alloc(64)
    dst = b.node.memory.alloc(64)
    a.node.memory.write(src, b"A" * 64)

    def app():
        handle = yield from a.rdma_write(src, dst, 64)
        yield from handle.wait()
        return handle

    run_app(cluster, app())
    assert b.node.memory.read(dst, 64) == b"A" * 64


def test_multi_frame_write_lands_bytes():
    cluster, a, b = pair()
    size = 10_000  # 7 frames
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = (bytes(range(256)) * 40)[:size]
    a.node.memory.write(src, payload)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    run_app(cluster, app())
    assert b.node.memory.read(dst, size) == payload
    assert a.stats.ops_completed == 1
    assert a.stats.data_frames_sent == 7


def test_zero_length_write_rejected():
    cluster, a, b = pair()
    src = a.node.memory.alloc(8)
    dst = b.node.memory.alloc(8)

    def app():
        yield from a.rdma_write(src, dst, 0)

    with pytest.raises(Exception):
        run_app(cluster, app())


def test_notification_delivered_to_target():
    cluster, a, b = pair()
    src = a.node.memory.alloc(128)
    dst = b.node.memory.alloc(128)
    got = []

    def sender():
        yield from a.rdma_write(src, dst, 128, flags=OpFlags.NOTIFY)

    def receiver():
        note = yield from b.wait_notification()
        got.append(note)

    cluster.sim.process(sender())
    proc = cluster.sim.process(receiver())
    cluster.sim.run_until_done(proc, limit=10_000_000)
    assert len(got) == 1
    assert got[0].src_node == 0
    assert got[0].length == 128


def test_no_notification_without_flag():
    cluster, a, b = pair()
    src = a.node.memory.alloc(16)
    dst = b.node.memory.alloc(16)

    def app():
        h = yield from a.rdma_write(src, dst, 16)
        yield from h.wait()

    run_app(cluster, app())
    assert b.poll_notification() is None


def test_rdma_read_pulls_remote_bytes():
    cluster, a, b = pair()
    local = a.node.memory.alloc(5000)
    remote = b.node.memory.alloc(5000)
    payload = b"remote-data!" * 416 + b"zz" * 4
    b.node.memory.write(remote, payload[:5000])

    def app():
        handle = yield from a.rdma_read(local, remote, 5000)
        yield from handle.wait()

    run_app(cluster, app())
    assert a.node.memory.read(local, 5000) == payload[:5000]
    assert a.stats.ops_completed == 1


def test_op_handle_test_and_latency():
    cluster, a, b = pair()
    src = a.node.memory.alloc(64)
    dst = b.node.memory.alloc(64)

    def app():
        handle = yield from a.rdma_write(src, dst, 64)
        assert not handle.test()
        yield from handle.wait()
        assert handle.test()
        return handle.latency_ns

    latency = run_app(cluster, app())
    # Sanity bounds: a 64-byte 1-GbE round trip of frame + ack takes tens of
    # microseconds, not milliseconds.
    assert 10 * US < latency < 1000 * US


def test_small_write_latency_10g_about_30us():
    """Paper Fig 2(a): minimum latency ~30 us on 1L-10G (memory-to-memory,
    i.e. data applied at the target)."""
    cluster, a, b = pair("1L-10G")
    src = a.node.memory.alloc(64)
    dst = b.node.memory.alloc(64)
    arrival = []

    def sender():
        yield from a.rdma_write(src, dst, 64, flags=OpFlags.NOTIFY)

    def receiver():
        yield from b.wait_notification()
        arrival.append(cluster.sim.now)

    cluster.sim.process(sender())
    proc = cluster.sim.process(receiver())
    cluster.sim.run_until_done(proc, limit=10_000_000)
    one_way_us = arrival[0] / 1000
    assert 15 <= one_way_us <= 45


def test_back_to_back_writes_all_complete():
    cluster, a, b = pair()
    n_ops, size = 20, 3000
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)

    def app():
        handles = []
        for _ in range(n_ops):
            h = yield from a.rdma_write(src, dst, size)
            handles.append(h)
        for h in handles:
            yield from h.wait()

    run_app(cluster, app())
    assert a.stats.ops_completed == n_ops


def test_bidirectional_traffic():
    cluster, a, b = pair()
    size = 4000
    src_a, dst_a = a.node.memory.alloc(size), a.node.memory.alloc(size)
    src_b, dst_b = b.node.memory.alloc(size), b.node.memory.alloc(size)
    a.node.memory.write(src_a, b"a" * size)
    b.node.memory.write(src_b, b"b" * size)

    def app_a():
        h = yield from a.rdma_write(src_a, dst_b, size)
        yield from h.wait()

    def app_b():
        h = yield from b.rdma_write(src_b, dst_a, size)
        yield from h.wait()

    pa = cluster.sim.process(app_a())
    pb = cluster.sim.process(app_b())
    cluster.sim.run_until_done(pa, limit=10_000_000)
    cluster.sim.run_until_done(pb, limit=10_000_000)
    assert b.node.memory.read(dst_b, size) == b"a" * size
    assert a.node.memory.read(dst_a, size) == b"b" * size


def test_forward_fence_orders_sends():
    """A forward-fenced op must be fully acked before later ops transmit."""
    cluster, a, b = pair()
    size = 3000
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)

    def app():
        h1 = yield from a.rdma_write(
            src, dst, size, flags=OpFlags.FENCE_FORWARD
        )
        h2 = yield from a.rdma_write(src, dst, size)
        yield from h2.wait()
        # By fence semantics, op1 must have completed no later than op2.
        assert h1.test()
        return (h1._op.completed_at, h2._op.completed_at)

    t1, t2 = run_app(cluster, app())
    assert t1 <= t2


def test_backward_fence_write_applied_after_predecessors():
    """Backward-fenced write to the same address must win (applied last)."""
    cluster, a, b = pair("2Lu-1G")
    size = 1464 * 3
    src1 = a.node.memory.alloc(size)
    src2 = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    a.node.memory.write(src1, b"1" * size)
    a.node.memory.write(src2, b"2" * size)

    def app():
        yield from a.rdma_write(src1, dst, size)
        h2 = yield from a.rdma_write(
            src2, dst, size, flags=OpFlags.FENCE_BACKWARD | OpFlags.NOTIFY
        )
        yield from h2.wait()

    def receiver():
        yield from b.wait_notification()

    cluster.sim.process(app())
    proc = cluster.sim.process(receiver())
    cluster.sim.run_until_done(proc, limit=50_000_000)
    assert b.node.memory.read(dst, size) == b"2" * size


def test_two_rail_configs_deliver_correctly():
    for config in ("2L-1G", "2Lu-1G"):
        cluster, a, b = pair(config)
        size = 50_000
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        payload = bytes(i % 251 for i in range(size))
        a.node.memory.write(src, payload)

        def app():
            h = yield from a.rdma_write(src, dst, size)
            yield from h.wait()

        run_app(cluster, app())
        assert b.node.memory.read(dst, size) == payload, config
        # Both rails actually carried traffic.
        used = [
            nic.counters.tx_frames > 0 for nic in a.node.nics
        ]
        assert all(used), config


def test_loss_recovery_with_bit_errors():
    """Corrupted frames are dropped at CRC and recovered via NACK/timeout."""
    from repro.ethernet import LinkParams

    cluster, a, b = pair(link=LinkParams(speed_bps=1e9, bit_error_rate=2e-6))
    size = 200_000  # ~137 frames; expect a handful of corruptions
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 256 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        h = yield from a.rdma_write(src, dst, size)
        yield from h.wait()

    run_app(cluster, app(), limit_ms=5000)
    assert b.node.memory.read(dst, size) == payload
    assert a.stats.retransmitted_frames > 0


def test_in_order_mode_never_applies_out_of_order():
    cluster, a, b = pair("2L-1G")
    size = 100_000
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)

    def app():
        h = yield from a.rdma_write(src, dst, size)
        yield from h.wait()

    run_app(cluster, app())
    # Frames arrived out of order (two rails) but were buffered.
    assert b.stats.out_of_order_frames > 0
    assert b.stats.buffered_frames > 0


def test_duplicate_triggers_immediate_ack():
    cluster, a, b = pair()
    src = a.node.memory.alloc(64)
    dst = b.node.memory.alloc(64)

    def app():
        h = yield from a.rdma_write(src, dst, 64)
        yield from h.wait()

    run_app(cluster, app())
    # Manually replay the delivered frame: the receiver should detect the
    # duplicate and emit an explicit ack.
    conn_b = b.conn
    acks_before = conn_b.stats.explicit_acks_sent
    dup_is_new, _ = conn_b.tracker.on_frame(0)
    assert not dup_is_new
