"""Regression: a retransmission must never re-send the in-flight object.

The PR-7 era bug: the retransmit path pushed the *stored* master frame
(``rec.frame``) back onto a NIC, so transit mutations (hop counts, ECN CE
marks, corruption flags) accumulated on the same object a previous copy
— possibly still mid-journey on another rail — and the stored master
itself.  These tests transmit through a real cluster under a forced
outage and assert every wire transmission is its own object.
"""

from repro.bench import make_cluster
from repro.ethernet.nic import Nic

US = 1_000
MS = 1_000_000


def _run_outage_transfer(monkeypatch, size=262_144):
    cluster = make_cluster("1L-1G", nodes=2, seed=0, synthetic_payloads=True)
    a, b = cluster.connect(0, 1)

    transmitted = []  # every frame object handed to any NIC, kept alive
    orig = Nic.transmit

    def spy(self, frame):
        transmitted.append(frame)
        return orig(self, frame)

    monkeypatch.setattr(Nic, "transmit", spy)

    # Kill the only rail mid-transfer; timeouts then retransmit the window.
    cable = cluster.cable(0, 0)
    cluster.sim.schedule(200 * US, cable.fail_for, 400 * US)

    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)

    def app():
        handle = yield from a.rdma_write(src, dst, size)
        yield from handle.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=5_000 * MS)
    cluster.sim.run()  # drain trailing acks/retransmits
    return cluster, a, transmitted


def test_every_wire_transmission_is_a_distinct_object(monkeypatch):
    cluster, a, transmitted = _run_outage_transfer(monkeypatch)
    assert a.stats.retransmitted_frames > 0, "outage caused no retransmits"
    # With the aliasing bug, a retransmitted seq re-sends the same Frame
    # object; the spy list keeps every frame alive, so id() is unambiguous.
    assert len({id(f) for f in transmitted}) == len(transmitted)


def test_per_sim_uids_stamp_each_transmission_exactly_once(monkeypatch):
    cluster, a, transmitted = _run_outage_transfer(monkeypatch)
    uids = [f.uid for f in transmitted]
    # transmit() stamps a fresh per-simulator uid per wire frame: dense,
    # unique, starting at 1.  A re-sent master would carry its old uid.
    assert sorted(uids) == list(range(1, len(transmitted) + 1))


def test_retransmitted_copies_start_transit_clean(monkeypatch):
    cluster, a, transmitted = _run_outage_transfer(monkeypatch)
    from repro.ethernet.frame import ECN_CE

    by_key = {}
    for f in transmitted:
        by_key.setdefault(
            (f.header.connection_id, f.header.frame_type, f.header.seq), []
        ).append(f)
    resent = [fs for fs in by_key.values() if len(fs) > 1]
    assert resent, "no seq was transmitted more than once"
    for frames in resent:
        # Each copy accrued its own transit state; under aliasing the later
        # copies inherit (and double) the earlier copies' hop counts.
        assert all(f.hops <= 1 for f in frames)
        assert all(not f.corrupted for f in frames)
        assert all(not (f.header.flags & ECN_CE) or f.hops > 0 for f in frames)