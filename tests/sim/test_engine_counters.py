"""Regression tests for the two-lane engine's timer reclamation and counters."""

from repro.sim.core import _COMPACT_MIN_DEAD, Simulator


def test_cancelled_then_compacted_timer_never_fires_and_heap_shrinks():
    """A cancelled timer must never fire, and mass cancellation must shrink
    ``pending_events`` via heap compaction instead of rotting until the
    deadline (the seed engine's behaviour)."""
    sim = Simulator()
    fired = []
    n = 4 * _COMPACT_MIN_DEAD
    timers = [
        sim.timer(1_000_000 + i, fired.append, i) for i in range(n)
    ]
    assert sim.pending_events == n

    for t in timers:
        t.cancel()
    # Compaction triggers while cancelling (dead entries outnumber live
    # ones long before the last cancel), so the queue has already shrunk.
    assert sim.pending_events < n
    assert sim.heap_compactions >= 1
    assert sim.cancelled_popped + sim._dead == n

    # Survivor scheduled *after* the deadline window: if any cancelled
    # entry were still callable it would fire first.
    sim.schedule(2_000_000, fired.append, "sentinel")
    sim.run()
    assert fired == ["sentinel"]
    assert sim.pending_events == 0
    assert sim.cancelled_popped == n


def test_cancelled_zero_delay_timer_never_fires():
    sim = Simulator()
    fired = []
    t = sim.timer(0, fired.append, "zero")
    t.cancel()
    sim.timer(0, fired.append, "live")
    sim.run()
    assert fired == ["live"]


def test_engine_counters_track_scheduling_lanes():
    sim = Simulator()
    ran = []
    sim.schedule(0, ran.append, "fast")  # fast lane
    sim.schedule(5, ran.append, "heap")  # heap
    t = sim.timer(7, ran.append, "timer")  # heap
    t.cancel()
    sim.run()
    assert ran == ["fast", "heap"]
    assert sim.fastlane_hits == 1
    assert sim.heap_pushes == 2
    assert sim.cancelled_popped == 1
    assert sim.events_processed == 2  # cancelled pop is not an event


def test_counters_surface_in_cluster_summary():
    from repro.analysis.summary import summarize_cluster
    from repro.bench.cluster import make_cluster
    from repro.bench.micro import run_micro

    cluster = make_cluster("1L-1G", nodes=2, seed=0)
    run_micro("one-way", cluster, 4096)
    summary = summarize_cluster(cluster)
    assert summary.events_processed == cluster.sim.events_processed > 0
    assert summary.heap_pushes == cluster.sim.heap_pushes > 0
    assert summary.fastlane_hits == cluster.sim.fastlane_hits > 0
    assert 0.0 < summary.fastlane_fraction < 1.0
