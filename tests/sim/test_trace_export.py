"""Tracer ring-buffer cap and Chrome trace-event export."""

import json

import pytest

from repro.sim import Simulator, Tracer, export_chrome_trace


def make_tracer(**kwargs):
    return Simulator(), Tracer(Simulator(), **kwargs)


def test_unbounded_by_default():
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable("x")
    for i in range(1000):
        tr.record("x", i)
    assert len(tr.records) == 1000
    assert tr.dropped_records == 0


def test_max_records_ring_buffer():
    sim = Simulator()
    tr = Tracer(sim, max_records=10)
    tr.enable("x")
    for i in range(25):
        tr.record("x", i)
    assert len(tr.records) == 10
    assert tr.dropped_records == 15
    assert [r.payload for r in tr.records] == list(range(15, 25))


def test_max_records_validation():
    with pytest.raises(ValueError):
        Tracer(Simulator(), max_records=0)


def test_clear_resets_drop_counter():
    sim = Simulator()
    tr = Tracer(sim, max_records=2)
    tr.enable("x")
    for i in range(5):
        tr.record("x", i)
    tr.clear()
    assert len(tr.records) == 0
    assert tr.dropped_records == 0


def test_disabled_categories_not_recorded():
    sim = Simulator()
    tr = Tracer(sim, max_records=4)
    tr.enable("on")
    tr.record("off", 1)
    tr.record("on", 2)
    assert len(tr.records) == 1


def _edge(conn, rail, new, reason="r"):
    return {"conn": conn, "rail": rail, "old": "up", "new": new, "reason": reason}


def test_chrome_export_spans_and_instants(tmp_path):
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable_all()

    def script():
        tr.record("edge.state", _edge(1, 0, "suspect"))
        yield 1_000_000
        tr.record("edge.state", _edge(1, 0, "down"))
        yield 1_000_000
        tr.record("frame.tx", {"nic": "n0.nic0", "seq": 7})
        tr.record("edge.state", _edge(1, 0, "up"))

    sim.run_until_done(sim.process(script()))
    out = tmp_path / "trace.json"
    trace = export_chrome_trace(tr, str(out), end_time_ns=5_000_000)

    loaded = json.loads(out.read_text())
    assert loaded["traceEvents"] == trace["traceEvents"]

    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    # Three states -> three spans; the last is closed at end_time_ns.
    assert [s["name"] for s in spans] == ["suspect", "down", "up"]
    assert all(s["tid"] == "conn1.rail0" for s in spans)
    # ts/dur are microseconds.
    assert spans[0]["ts"] == 0.0 and spans[0]["dur"] == 1000.0
    assert spans[2]["ts"] == 2000.0 and spans[2]["dur"] == 3000.0
    # The frame event lands on its category track as an instant.
    frame = [e for e in instants if e["cat"] == "frame.tx"]
    assert len(frame) == 1 and frame[0]["args"]["seq"] == 7


def test_chrome_export_counts_drops_in_metadata():
    sim = Simulator()
    tr = Tracer(sim, max_records=1)
    tr.enable("x")
    tr.record("x", 1)
    tr.record("x", 2)
    trace = export_chrome_trace(tr)
    assert trace["metadata"]["dropped_records"] == 1


def test_chrome_export_non_dict_payload():
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable("y")
    tr.record("y", 42)
    trace = export_chrome_trace(tr)
    assert trace["traceEvents"][0]["args"] == {"payload": "42"}
