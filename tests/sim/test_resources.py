"""Unit tests for Resource, Store, and Gate."""

import pytest

from repro.sim import Gate, Resource, SimulationError, Simulator, Store
from repro.sim.resources import hold


def test_resource_grants_immediately_when_free():
    sim = Simulator()
    res = Resource(sim)
    ev = res.acquire()
    assert ev.triggered
    assert res.in_use == 1


def test_resource_fifo_handoff():
    sim = Simulator()
    res = Resource(sim)
    order = []

    def worker(tag, duration):
        yield res.acquire()
        yield duration
        order.append((tag, sim.now))
        res.release()

    sim.process(worker("a", 10))
    sim.process(worker("b", 10))
    sim.process(worker("c", 10))
    sim.run()
    assert order == [("a", 10), ("b", 20), ("c", 30)]


def test_resource_capacity_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(tag):
        yield res.acquire()
        yield 10
        done.append((tag, sim.now))
        res.release()

    for tag in range(4):
        sim.process(worker(tag))
    sim.run()
    # Two run concurrently, so pairs finish at t=10 and t=20.
    assert [t for _, t in done] == [10, 10, 20, 20]


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_busy_time_accounting():
    sim = Simulator()
    res = Resource(sim)
    sim.process(hold(res, 30))
    sim.run()
    sim.schedule(70, lambda: None)
    sim.run()
    assert sim.now == 100
    assert res.utilization() == pytest.approx(0.3)


def test_resource_utilization_with_elapsed_override():
    sim = Simulator()
    res = Resource(sim)
    sim.process(hold(res, 50))
    sim.run()
    assert res.utilization(elapsed=200) == pytest.approx(0.25)


def test_resource_reset_accounting():
    sim = Simulator()
    res = Resource(sim)
    sim.process(hold(res, 50))
    sim.run()
    res.reset_accounting()
    sim.schedule(50, lambda: None)
    sim.run()
    assert res.utilization(elapsed=50) == 0.0


def test_resource_utilization_at_time_zero():
    sim = Simulator()
    res = Resource(sim)
    assert res.utilization() == 0.0


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    ev = store.get()
    assert ev.triggered and ev.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter():
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(getter())
    sim.schedule(15, store.put, "y")
    sim.run()
    assert got == [(15, "y")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    out = [store.get().value for _ in range(5)]
    assert out == [0, 1, 2, 3, 4]


def test_store_bounded_drops_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.put(1)
    assert store.put(2)
    assert not store.put(3)
    assert store.drops == 1
    assert len(store) == 2


def test_store_put_to_waiting_getter_bypasses_capacity():
    sim = Simulator()
    store = Store(sim, capacity=1)

    def getter():
        yield store.get()

    sim.process(getter())
    sim.run()
    assert store.waiting_getters == 1
    assert store.put("direct")
    sim.run()
    assert store.waiting_getters == 0


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put(9)
    ok, item = store.try_get()
    assert ok and item == 9


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_gate_wait_when_open_is_immediate():
    sim = Simulator()
    gate = Gate(sim, open=True)
    ev = gate.wait()
    assert ev.triggered


def test_gate_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter():
        yield gate.wait()
        woke.append(sim.now)

    sim.process(waiter())
    sim.schedule(20, gate.open)
    sim.run()
    assert woke == [20]


def test_gate_close_reblocks():
    sim = Simulator()
    gate = Gate(sim, open=True)
    gate.close()
    woke = []

    def waiter():
        yield gate.wait()
        woke.append(sim.now)

    sim.process(waiter())
    sim.run()
    assert woke == []
    gate.open()
    sim.run()
    assert woke == [sim.now]


def test_gate_releases_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    count = []

    def waiter():
        yield gate.wait()
        count.append(1)

    for _ in range(4):
        sim.process(waiter())
    sim.schedule(5, gate.open)
    sim.run()
    assert len(count) == 4
