"""Unit tests for RNG streams and the tracer."""

from repro.sim import RngRegistry, Simulator, Tracer


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("link.jitter")
    b = RngRegistry(seed=42).stream("link.jitter")
    assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))


def test_different_names_independent():
    reg = RngRegistry(seed=42)
    a = list(reg.stream("a").integers(0, 10**9, 8))
    b = list(reg.stream("b").integers(0, 10**9, 8))
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x")
    b = RngRegistry(seed=2).stream("x")
    assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))


def test_stream_is_cached():
    reg = RngRegistry(seed=0)
    assert reg.stream("s") is reg.stream("s")


def test_uniform_int_bounds():
    reg = RngRegistry(seed=3)
    draws = [reg.uniform_int("d", 5, 10) for _ in range(100)]
    assert all(5 <= d < 10 for d in draws)


def test_bernoulli_extremes():
    reg = RngRegistry(seed=3)
    assert not reg.bernoulli("p", 0.0)
    assert reg.bernoulli("p", 1.0)


def test_bernoulli_rate():
    reg = RngRegistry(seed=7)
    hits = sum(reg.bernoulli("coin", 0.25) for _ in range(4000))
    assert 800 < hits < 1200


def test_tracer_disabled_by_default():
    sim = Simulator()
    tr = Tracer(sim)
    tr.record("frame.tx", 1)
    assert tr.records == []


def test_tracer_enabled_category():
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable("frame.tx")
    sim.schedule(10, tr.record, "frame.tx", {"seq": 1})
    sim.schedule(10, tr.record, "frame.rx", {"seq": 1})
    sim.run()
    assert len(tr.records) == 1
    rec = tr.records[0]
    assert rec.time == 10 and rec.category == "frame.tx"


def test_tracer_enable_all_and_filter():
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable_all()
    tr.record("a", 1)
    tr.record("b", 2)
    tr.record("a", 3)
    assert [r.payload for r in tr.by_category("a")] == [1, 3]
    assert list(tr.categories()) == ["a", "b"]


def test_tracer_disable_and_clear():
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable("x")
    tr.record("x")
    tr.disable("x")
    tr.record("x")
    assert len(tr.records) == 1
    tr.clear()
    assert tr.records == []
