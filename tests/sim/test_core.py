"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    Event,
    SimulationError,
    Simulator,
    Timer,
    all_of,
    any_of,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(30, seen.append, "c")
    sim.schedule(10, seen.append, "a")
    sim.schedule(20, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fifo():
    sim = Simulator()
    seen = []
    for tag in range(10):
        sim.schedule(5, seen.append, tag)
    sim.run()
    assert seen == list(range(10))


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    seen = []
    sim.schedule(10, seen.append, 1)
    sim.schedule(100, seen.append, 2)
    sim.run(until=50)
    assert seen == [1]
    assert sim.now == 50
    sim.run()
    assert seen == [1, 2]
    assert sim.now == 100


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=500)
    assert sim.now == 500


def test_at_schedules_absolute():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    seen = []
    sim.at(25, seen.append, "x")
    sim.run()
    assert sim.now == 25 and seen == ["x"]


def test_process_timeout_yield():
    sim = Simulator()
    marks = []

    def body():
        marks.append(sim.now)
        yield 100
        marks.append(sim.now)
        yield 50
        marks.append(sim.now)
        return "done"

    proc = sim.process(body())
    result = sim.run_until_done(proc)
    assert marks == [0, 100, 150]
    assert result == "done"
    assert proc.finished


def test_process_waits_on_event():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append((sim.now, value))

    sim.process(waiter())
    sim.schedule(40, ev.trigger, "payload")
    sim.run()
    assert got == [(40, "payload")]


def test_process_waits_on_already_triggered_event():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(7)

    def waiter():
        value = yield ev
        return value

    proc = sim.process(waiter())
    assert sim.run_until_done(proc) == 7


def test_process_joins_process():
    sim = Simulator()

    def child():
        yield 30
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    proc = sim.process(parent())
    assert sim.run_until_done(proc) == 43
    assert sim.now == 30


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()


def test_event_wakes_multiple_waiters_in_order():
    sim = Simulator()
    ev = sim.event()
    order = []

    def waiter(tag):
        yield ev
        order.append(tag)

    for tag in "abc":
        sim.process(waiter(tag))
    sim.schedule(10, ev.trigger)
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_exception_propagates_with_context():
    sim = Simulator()

    def bad():
        yield 10
        raise ValueError("boom")

    sim.process(bad(), name="badproc")
    with pytest.raises(SimulationError, match="badproc"):
        sim.run()


def test_process_yield_bad_type_raises():
    sim = Simulator()

    def bad():
        yield "not a valid target"

    sim.process(bad())
    with pytest.raises(SimulationError, match="unsupported"):
        sim.run()


def test_process_float_yield_rounds():
    sim = Simulator()

    def body():
        yield 10.6

    proc = sim.process(body())
    sim.run_until_done(proc)
    assert sim.now == 11


def test_timer_fires():
    sim = Simulator()
    fired = []
    Timer(sim, 25, fired.append, "t")
    sim.run()
    assert fired == ["t"]
    assert sim.now == 25


def test_timer_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    t = sim.timer(25, fired.append, "t")
    assert t.active
    t.cancel()
    sim.run()
    assert fired == []
    assert not t.active


def test_timer_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timer(-5, lambda: None)


def test_run_until_done_detects_deadlock():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    proc = sim.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_done(proc)


def test_run_until_done_respects_time_limit():
    sim = Simulator()

    def slow():
        yield 10_000

    proc = sim.process(slow())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_done(proc, limit=100)


def test_all_of_collects_values_in_order():
    sim = Simulator()
    evs = [sim.event() for _ in range(3)]
    combined = all_of(sim, evs)
    sim.schedule(30, evs[2].trigger, "z")
    sim.schedule(10, evs[0].trigger, "x")
    sim.schedule(20, evs[1].trigger, "y")
    sim.run()
    assert combined.triggered
    assert combined.value == ["x", "y", "z"]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    combined = all_of(sim, [])
    assert combined.triggered and combined.value == []


def test_any_of_first_wins():
    sim = Simulator()
    evs = [sim.event() for _ in range(3)]
    combined = any_of(sim, evs)
    sim.schedule(20, evs[1].trigger, "mid")
    sim.schedule(30, evs[0].trigger, "late")
    sim.run()
    assert combined.value == (1, "mid")


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_processed == 5
