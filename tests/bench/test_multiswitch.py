"""Tests for the leaf-spine multi-switch topology (paper §6 future work)."""

import pytest

from repro.bench import make_cluster
from repro.bench.micro import run_one_way


def test_leaf_spine_builds():
    cluster = make_cluster("1L-1G", nodes=8, leaf_switches=2)
    assert len(cluster.leaves[0]) == 2
    assert len(cluster.spines) == 1
    assert cluster.config.leaf_switches == 2


def test_validation():
    with pytest.raises(ValueError):
        make_cluster("1L-1G", nodes=2, leaf_switches=0)
    with pytest.raises(ValueError):
        make_cluster("1L-1G", nodes=2, leaf_switches=4)


def test_same_leaf_traffic_avoids_spine():
    cluster = make_cluster("1L-1G", nodes=8, leaf_switches=2)
    run_one_way(cluster, 65536)  # nodes 0 and 1: both on leaf 0
    assert cluster.spines[0].forwarded == 0
    assert cluster.leaves[0][0].forwarded > 0


def test_cross_leaf_traffic_uses_spine():
    cluster = make_cluster("1L-1G", nodes=8, leaf_switches=2)
    a, b = cluster.connect(0, 5)
    size = 65536
    src = a.node.memory.alloc(size)
    dst = b.node.memory.alloc(size)
    payload = bytes(i % 256 for i in range(size))
    a.node.memory.write(src, payload)

    def app():
        h = yield from a.rdma_write(src, dst, size)
        yield from h.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=60_000_000_000)
    assert b.node.memory.read(dst, size) == payload
    assert cluster.spines[0].forwarded > 0


def test_cross_leaf_latency_higher_than_same_leaf():
    def small_latency(i, j):
        cluster = make_cluster("1L-1G", nodes=8, leaf_switches=2)
        from repro.ethernet import OpFlags

        a, b = cluster.connect(i, j)
        src = a.node.memory.alloc(64)
        dst = b.node.memory.alloc(64)
        arrived = []

        def sender():
            yield from a.rdma_write(src, dst, 64, flags=OpFlags.NOTIFY)

        def receiver():
            yield from b.wait_notification()
            arrived.append(cluster.sim.now)

        cluster.sim.process(sender())
        proc = cluster.sim.process(receiver())
        cluster.sim.run_until_done(proc, limit=10_000_000_000)
        return arrived[0]

    assert small_latency(0, 5) > small_latency(0, 1)


def test_oversubscribed_uplink_congests():
    """Many cross-leaf senders share one uplink: it must bottleneck."""
    cluster = make_cluster("1L-1G", nodes=8, leaf_switches=2)
    size = 200_000
    procs = []
    # Nodes 0-3 (leaf 0) all send to nodes 4-7 (leaf 1): 4 flows, 1 uplink.
    for i in range(4):
        a, b = cluster.connect(i, 4 + i)
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        a.node.memory.write(src, b"u" * size)

        def app(a=a, src=src, dst=dst):
            h = yield from a.rdma_write(src, dst, size)
            yield from h.wait()

        procs.append(cluster.sim.process(app()))
    t0 = cluster.sim.now
    for p in procs:
        cluster.sim.run_until_done(p, limit=120_000_000_000)
    elapsed = cluster.sim.now - t0
    aggregate_mbps = 4 * size / (elapsed / 1e9) / 1e6
    # One 1-GbE uplink caps the aggregate near ~119 MB/s, far below the
    # 4 * 119 the flat topology would deliver.
    assert aggregate_mbps < 140


def test_fat_uplink_removes_bottleneck():
    cluster = make_cluster(
        "1L-1G", nodes=8, leaf_switches=2, uplink_speed_bps=10e9
    )
    size = 200_000
    procs = []
    for i in range(4):
        a, b = cluster.connect(i, 4 + i)
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        a.node.memory.write(src, b"u" * size)

        def app(a=a, src=src, dst=dst):
            h = yield from a.rdma_write(src, dst, size)
            yield from h.wait()

        procs.append(cluster.sim.process(app()))
    t0 = cluster.sim.now
    for p in procs:
        cluster.sim.run_until_done(p, limit=120_000_000_000)
    elapsed = cluster.sim.now - t0
    aggregate_mbps = 4 * size / (elapsed / 1e9) / 1e6
    assert aggregate_mbps > 300


def test_dsm_app_runs_on_leaf_spine():
    from repro.apps import FftApp, run_app

    result = run_app(FftApp(m=32), nodes=8, leaf_switches=2)
    assert result.verified


def test_thirtytwo_node_cluster():
    """Beyond the paper's 16 nodes: a 32-node, 4-leaf fabric works."""
    cluster = make_cluster("1L-1G", nodes=32, leaf_switches=4)
    a, b = cluster.connect(0, 31)
    src = a.node.memory.alloc(4096)
    dst = b.node.memory.alloc(4096)
    a.node.memory.write(src, b"x" * 4096)

    def app():
        h = yield from a.rdma_write(src, dst, 4096)
        yield from h.wait()

    proc = cluster.sim.process(app())
    cluster.sim.run_until_done(proc, limit=60_000_000_000)
    assert b.node.memory.read(dst, 4096) == b"x" * 4096
