"""Tests for the benchmark harness: configs, micro-runners, reporting."""

import pytest

from repro.bench import (
    CONFIG_NAMES,
    Table,
    band_str,
    check_band,
    fmt,
    make_cluster,
    run_micro,
)
from repro.bench.cluster import ClusterConfig
from repro.bench.paper_data import (
    APP_ORDER,
    FIG2_MAX_THROUGHPUT_MBPS,
    FIG3_SPEEDUP_BANDS,
    LINK_NOMINAL_MBPS,
)


class TestClusterConfigs:
    def test_all_named_configs_build(self):
        for name in CONFIG_NAMES:
            cluster = make_cluster(name, nodes=2)
            assert cluster.config.name == name
            assert len(cluster.stacks) == 2

    def test_default_node_counts_match_paper(self):
        assert make_cluster("1L-1G").config.nodes == 16
        assert make_cluster("1L-10G").config.nodes == 4
        assert make_cluster("2L-1G").config.nodes == 16

    def test_rail_counts(self):
        assert len(make_cluster("1L-1G", nodes=2).nodes[0].nics) == 1
        assert len(make_cluster("2L-1G", nodes=2).nodes[0].nics) == 2
        assert len(make_cluster("2L-1G", nodes=2).switches) == 2

    def test_ordering_modes(self):
        assert make_cluster("2L-1G", nodes=2).config.protocol.in_order_delivery
        assert not make_cluster("2Lu-1G", nodes=2).config.protocol.in_order_delivery

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            make_cluster("3L-40G")

    def test_connect_caching_and_symmetry(self):
        cluster = make_cluster("1L-1G", nodes=3)
        a1, b1 = cluster.connect(0, 1)
        b2, a2 = cluster.connect(1, 0)
        assert a1 is a2 and b1 is b2

    def test_connect_self_rejected(self):
        cluster = make_cluster("1L-1G", nodes=2)
        with pytest.raises(ValueError):
            cluster.connect(1, 1)

    def test_config_validation(self):
        from repro.ethernet import LinkParams, SwitchParams
        from repro.host import tigon3_params

        with pytest.raises(ValueError):
            ClusterConfig(
                name="x", nodes=0, rails=1, nic_factory=tigon3_params,
                link=LinkParams(), switch=SwitchParams(),
            )
        with pytest.raises(ValueError):
            ClusterConfig(
                name="x", nodes=2, rails=0, nic_factory=tigon3_params,
                link=LinkParams(), switch=SwitchParams(),
            )


class TestMicroRunner:
    def test_unknown_benchmark_rejected(self):
        cluster = make_cluster("1L-1G", nodes=2)
        with pytest.raises(ValueError):
            run_micro("three-way", cluster, 1024)

    def test_result_fields_consistent(self):
        cluster = make_cluster("1L-1G", nodes=2)
        r = run_micro("one-way", cluster, 16384)
        assert r.benchmark == "one-way"
        assert r.config == "1L-1G"
        assert r.size == 16384
        assert r.elapsed_ns > 0
        assert r.data_frames > 0
        assert 0 <= r.out_of_order_fraction <= 1
        assert r.interrupt_fraction >= 0

    def test_ping_pong_symmetric_sizes(self):
        cluster = make_cluster("1L-1G", nodes=2)
        r = run_micro("ping-pong", cluster, 4096, iterations=5)
        # Both directions carried data frames.
        assert r.data_frames >= 2 * 5 * 3  # 3 frames per 4 KB per direction

    def test_two_way_counts_both_directions(self):
        c1 = make_cluster("1L-1G", nodes=2)
        one = run_micro("one-way", c1, 65536)
        c2 = make_cluster("1L-1G", nodes=2)
        two = run_micro("two-way", c2, 65536)
        assert two.throughput_mbps > 1.7 * one.throughput_mbps


class TestReporting:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(0.0) == "0"
        assert fmt(3.14159) == "3.14"
        assert fmt(12345.6) == "12,346"
        assert fmt("text") == "text"

    def test_table_rendering(self):
        t = Table("demo", ["a", "bb"])
        t.add(1, 2.5)
        t.add("x", None)
        text = t.render()
        assert "demo" in text and "bb" in text
        assert "2.50" in text and "-" in text

    def test_table_wrong_arity(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_check_band(self):
        assert check_band(5.0, (4.0, 6.0))
        assert not check_band(7.0, (4.0, 6.0))
        assert check_band(6.5, (4.0, 6.0), slack=0.3)

    def test_band_str(self):
        assert band_str((1.0, 2.0)) == "1.00..2.00"


class TestPaperData:
    def test_app_order_covers_all_bands(self):
        assert set(APP_ORDER) == set(FIG3_SPEEDUP_BANDS)

    def test_nominal_rates(self):
        assert LINK_NOMINAL_MBPS["1L-1G"] == 125.0
        assert LINK_NOMINAL_MBPS["1L-10G"] == 1250.0

    def test_throughput_targets_sane(self):
        for (config, _), value in FIG2_MAX_THROUGHPUT_MBPS.items():
            assert value <= 2 * LINK_NOMINAL_MBPS[config]
