"""Determinism tests for the process-parallel sweep runner.

Every experiment point builds its own seeded simulator, so a worker process
must produce exactly the result the serial runner produces in-process.
These tests assert field-for-field equality (``dataclasses.asdict``), not
just headline numbers.
"""

import dataclasses

import repro.bench.runner as runner
from repro.bench.parallel import parallel_app_runs, parallel_micro_sweep, run_points

# Small sizes keep this inside tier-1 time; two configs as required.
SIZES = (64, 4096)
CONFIGS = ("1L-1G", "2L-1G")


def _fields(results):
    return [dataclasses.asdict(r) for r in results]


def test_parallel_micro_sweep_matches_serial_field_for_field():
    for config in CONFIGS:
        par = parallel_micro_sweep(config, "one-way", SIZES, processes=2)
        # Drop the primed cache so the serial run actually recomputes.
        runner._micro_cache.clear()
        ser = runner.micro_sweep(config, "one-way", SIZES)
        assert _fields(par) == _fields(ser), config


def test_parallel_sweep_primes_serial_cache():
    runner._micro_cache.clear()
    par = parallel_micro_sweep("1L-1G", "ping-pong", (64,), processes=2)
    key = ("1L-1G", "ping-pong", 64, 0)
    assert key in runner._micro_cache
    # The serial entry point now returns the primed object without rerunning.
    ser = runner.micro_sweep("1L-1G", "ping-pong", (64,))
    assert ser[0] is runner._micro_cache[key]
    assert _fields(par) == _fields(ser)


def test_parallel_app_runs_match_serial_field_for_field():
    spec = ("fft", "1L-1G", 2, 0)
    [par] = parallel_app_runs([spec], processes=2)
    runner._app_cache.clear()
    ser = runner.app_run(*spec)
    assert dataclasses.asdict(par) == dataclasses.asdict(ser)


def test_run_points_serial_fallback_is_identical():
    point = ("1L-1G", "one-way", 4096, 0)
    runner._micro_cache.clear()
    run_points(micro=[point], processes=0)  # forced in-process path
    serial_result = runner._micro_cache[point]
    runner._micro_cache.clear()
    run_points(micro=[point], processes=2)  # pool path
    pool_result = runner._micro_cache[point]
    assert dataclasses.asdict(serial_result) == dataclasses.asdict(pool_result)
