"""Tests for the byte-striping and go-back-N baselines."""

import pytest

from repro.baselines import install_go_back_n, run_byte_striping
from repro.bench.cluster import make_cluster
from repro.bench.micro import run_one_way
from repro.ethernet import LinkParams


class TestByteStriping:
    def test_single_rail_close_to_line_rate(self):
        cluster = make_cluster("1L-1G", nodes=2)
        r = run_byte_striping(cluster, total_bytes=1_000_000)
        assert 100 < r.throughput_mbps < 125
        assert r.rails == 1

    def test_two_rails_scale_but_below_2x(self):
        one = run_byte_striping(
            make_cluster("1L-1G", nodes=2), total_bytes=1_000_000
        )
        two = run_byte_striping(
            make_cluster("2L-1G", nodes=2), total_bytes=1_000_000
        )
        assert two.rails == 2
        # Faster than one rail, but the per-slice overhead and rail
        # lock-step keep it below a perfect 2x.
        assert two.throughput_mbps > 1.5 * one.throughput_mbps
        assert two.throughput_mbps < 1.99 * one.throughput_mbps

    def test_frame_count_scales_with_rails(self):
        two = run_byte_striping(
            make_cluster("2L-1G", nodes=2), total_bytes=200_000
        )
        one = run_byte_striping(
            make_cluster("1L-1G", nodes=2), total_bytes=200_000
        )
        assert two.frames_sent == 2 * one.frames_sent

    def test_custom_unit_size(self):
        r = run_byte_striping(
            make_cluster("2L-1G", nodes=2),
            total_bytes=100_000,
            unit_bytes=512,
        )
        assert r.unit_bytes == 512
        assert r.throughput_mbps > 0


class TestGoBackN:
    def test_lossless_behaviour_similar_to_selective(self):
        base = run_one_way(make_cluster("1L-1G", nodes=2), 65536)
        cluster = make_cluster("1L-1G", nodes=2)
        for s in cluster.stacks:
            install_go_back_n(s.protocol)
        gbn = run_one_way(cluster, 65536)
        assert gbn.throughput_mbps == pytest.approx(
            base.throughput_mbps, rel=0.05
        )

    def test_lossy_link_worse_than_selective(self):
        link = LinkParams(speed_bps=1e9, bit_error_rate=3e-7)
        sel = run_one_way(
            make_cluster("1L-1G", nodes=2, link=link), 262144, iterations=8
        )
        cluster = make_cluster("1L-1G", nodes=2, link=link)
        for s in cluster.stacks:
            install_go_back_n(s.protocol)
        gbn = run_one_way(cluster, 262144, iterations=8)
        assert gbn.throughput_mbps < sel.throughput_mbps
        assert gbn.extra_frame_fraction > sel.extra_frame_fraction

    def test_install_only_affects_new_connections(self):
        from repro.baselines import GoBackNConnection

        cluster = make_cluster("1L-1G", nodes=3)
        pre, _ = cluster.connect(0, 1)
        for s in cluster.stacks:
            install_go_back_n(s.protocol)
        post, _ = cluster.connect(0, 2)
        assert not isinstance(pre.conn, GoBackNConnection)
        assert isinstance(post.conn, GoBackNConnection)

    def test_gbn_still_delivers_correct_data(self):
        cluster = make_cluster(
            "1L-1G",
            nodes=2,
            link=LinkParams(speed_bps=1e9, bit_error_rate=1e-6),
        )
        for s in cluster.stacks:
            install_go_back_n(s.protocol)
        a, b = cluster.connect(0, 1)
        size = 100_000
        src = a.node.memory.alloc(size)
        dst = b.node.memory.alloc(size)
        payload = bytes(i % 256 for i in range(size))
        a.node.memory.write(src, payload)

        def app():
            h = yield from a.rdma_write(src, dst, size)
            yield from h.wait()

        proc = cluster.sim.process(app())
        cluster.sim.run_until_done(proc, limit=30_000_000_000)
        assert b.node.memory.read(dst, size) == payload
