"""End-to-end ECN: fabric marks, receiver echoes, sender reacts.

Runs real incast traffic through a marking switch with the
:class:`~repro.verify.InvariantMonitor` attached (including the new
cwnd-bounds and ECN-conservation invariants) and checks the whole signal
path: CE marks at the switch, echo bits on acks, echo counts at the
sender, congestion-window reduction, and the analysis-layer roll-ups.
"""

import dataclasses

from repro.analysis import CwndProbe, MarkedFractionProbe, summarize_cluster
from repro.bench import make_cluster, run_incast
from repro.congestion import CongestionParams
from repro.core import ProtocolParams
from repro.verify import InvariantMonitor

SENDERS = 4
SIZE = 120_000
ECN_THRESHOLD = 16


def run_marked_incast(congestion: str, params: CongestionParams = None):
    """4-to-1 incast on a small marking queue; returns (cluster, monitor)."""
    cluster = make_cluster(
        "1L-1G",
        nodes=SENDERS + 1,
        protocol=ProtocolParams(
            in_order_delivery=False,
            congestion=congestion,
            congestion_params=params,
        ),
    )
    cluster.set_ecn_threshold(ECN_THRESHOLD)
    receiver = SENDERS
    payload = bytes(i % 241 for i in range(SIZE))
    targets = []
    procs = []
    probes = []
    for i in range(SENDERS):
        a, b = cluster.connect(i, receiver)
        src = a.node.memory.alloc(SIZE)
        dst = b.node.memory.alloc(SIZE)
        a.node.memory.write(src, payload)
        targets.append((b, dst))

        def app(a=a, src=src, dst=dst):
            h = yield from a.rdma_write(src, dst, SIZE)
            yield from h.wait()

        procs.append(cluster.sim.process(app()))
    monitor = InvariantMonitor.attach(cluster)
    sender_conns = [
        conn
        for stack in cluster.stacks[:SENDERS]
        for conn in stack.protocol.connections.values()
    ]
    probes.append(CwndProbe(cluster.sim, sender_conns[0]))
    probes.append(MarkedFractionProbe(cluster.sim, targets[0][0].conn))
    for p in procs:
        cluster.sim.run_until_done(p, limit=60_000_000_000)
    for probe in probes:
        probe.stop()  # before run(): a live probe ticks forever
    cluster.sim.run()
    monitor.final_check()
    intact = all(
        b.node.memory.read(dst, SIZE) == payload for b, dst in targets
    )
    assert intact, "incast corrupted receiver memory"
    return cluster, monitor, sender_conns, probes


def test_dctcp_reacts_to_marks_under_monitor():
    cluster, monitor, senders, (cwnd_probe, mark_probe) = run_marked_incast(
        "dctcp"
    )
    assert monitor.ok and monitor.checks_run > 0

    marked = sum(sw.ce_marked_total for sw in cluster.all_switches)
    assert marked > 0, "queue never crossed the ECN threshold"

    # Signal path: marks -> receiver CE counts -> echoes -> sender.
    all_conns = [
        c for s in cluster.stacks for c in s.protocol.connections.values()
    ]
    ce_received = sum(c.ce_frames_received for c in all_conns)
    echoes_sent = sum(c.ecn_echoes_sent for c in all_conns)
    echoes_received = sum(c.ecn_echoes_received for c in all_conns)
    assert 0 < ce_received <= marked
    assert 0 < echoes_received <= echoes_sent

    # The controller actually closed the window below its starting point.
    for conn in senders:
        assert conn.congestion.name == "dctcp"
        assert conn.window.cwnd is not None
        assert conn.window.cwnd < conn.window.size
        assert conn.congestion.marked_fraction > 0.0

    # Probes saw the window move and marks arrive.
    assert min(cwnd_probe.values) < max(cwnd_probe.values)
    assert max(mark_probe.values) > 0.0

    # Analysis roll-up exposes the same counters.
    summary = summarize_cluster(cluster)
    assert summary.ce_marked == marked
    assert summary.ce_received == ce_received
    assert summary.ecn_echoes_sent == echoes_sent
    assert summary.ecn_echoes_received == echoes_received
    assert summary.congestion_controllers == ["dctcp"]
    assert 0 < summary.cwnd_final_mean < senders[0].window.size


def test_static_controller_echoes_but_never_reacts():
    """ECN marking with the static policy: the echo plumbing still works,
    the window never moves, and every invariant still holds."""
    cluster, monitor, senders, _probes = run_marked_incast("static")
    assert monitor.ok
    marked = sum(sw.ce_marked_total for sw in cluster.all_switches)
    all_conns = [
        c for s in cluster.stacks for c in s.protocol.connections.values()
    ]
    assert marked > 0
    assert sum(c.ecn_echoes_sent for c in all_conns) > 0
    for conn in senders:
        assert conn.window.cwnd is None  # never clamped
        assert conn.congestion.cwnd_frames == conn.window.size


def test_pacing_delays_departures_end_to_end():
    r = run_incast(
        senders=8,
        congestion="dctcp",
        ecn_threshold_frames=32,
        congestion_params=CongestionParams(pacing=True),
    )
    assert r.pacing_stall_ns > 0, "token bucket never delayed a frame"
    assert r.data_intact


def test_inactive_congestion_params_change_nothing():
    """Passing an explicit params object with the static controller is
    byte-identical to the all-defaults path."""
    base = run_incast(senders=4, congestion="static")
    explicit = run_incast(
        senders=4,
        congestion="static",
        congestion_params=CongestionParams(min_cwnd_frames=4, pacing=False),
    )
    assert dataclasses.asdict(base) == dataclasses.asdict(explicit)
