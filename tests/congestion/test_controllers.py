"""Unit tests for the pluggable congestion controllers.

Everything here drives a bare :class:`SendWindow` + controller pair with
hand-written ack/loss/timeout events — no simulator — so the arithmetic
(AIMD schedule, DCTCP alpha EWMA, clamping, RTT smoothing) is checked
against exact expected values.
"""

import pytest

from repro.congestion import (
    AimdController,
    CongestionParams,
    DctcpController,
    StaticWindow,
    make_congestion_controller,
)
from repro.congestion.base import CONTROLLER_NAMES
from repro.core.window import SendWindow

US = 1_000
MS = 1_000_000


def make(kind: str, size: int = 64, **kw):
    window = SendWindow(size=size)
    params = CongestionParams(**kw) if kw else None
    return window, make_congestion_controller(kind, window, params)


# -- registry / params -------------------------------------------------------


def test_registry_names():
    names = CONTROLLER_NAMES()
    assert {"static", "aimd", "dctcp"} <= set(names)


def test_unknown_controller_rejected():
    with pytest.raises(ValueError, match="unknown congestion controller"):
        make("reno")


@pytest.mark.parametrize(
    "kw",
    [
        {"min_cwnd_frames": 0},
        {"additive_increase_frames": 0},
        {"md_factor": 0.0},
        {"md_factor": 1.0},
        {"dctcp_g": 1.5},
        {"pacing_headroom": 0.5},
    ],
)
def test_params_validation(kw):
    with pytest.raises(ValueError):
        CongestionParams(**kw)


# -- static (the default) ----------------------------------------------------


def test_static_is_inert():
    window, cc = make("static")
    assert isinstance(cc, StaticWindow)
    assert not cc.active
    assert cc.cwnd_frames == window.size
    assert cc.marked_fraction == 0.0
    cc.on_ack(4, True, now=0)
    cc.on_loss(now=0)
    cc.on_timeout(now=0)
    # The whole point: the window never learns a congestion limit.
    assert window.cwnd is None
    assert window.available == window.size
    assert cc.pacing_rate_bps() is None


# -- AIMD --------------------------------------------------------------------


def test_aimd_additive_increase_schedule():
    window, cc = make("aimd", initial_cwnd_frames=16)
    assert window.cwnd == 16
    # One cwnd's worth of acks adds ~additive_increase_frames (1 frame).
    cc.on_ack(16, False, now=0)
    assert window.cwnd == 17
    assert cc._cwnd == pytest.approx(17.0)
    # Coalesced acks accumulate the same growth as per-frame acks.
    w2, cc2 = make("aimd", initial_cwnd_frames=16)
    for _ in range(16):
        cc2.on_ack(1, False, now=0)
    assert cc2._cwnd == pytest.approx(17.0, abs=0.05)


def test_aimd_ece_cuts_multiplicatively():
    window, cc = make("aimd", initial_cwnd_frames=32)
    cc.on_ack(1, True, now=1 * MS)
    assert window.cwnd == 16


def test_aimd_cut_rate_limited_to_once_per_rtt():
    window, cc = make("aimd", initial_cwnd_frames=32, rtt_init_ns=200 * US)
    cc.on_loss(now=1 * MS)
    assert window.cwnd == 16
    cc.on_loss(now=1 * MS + 50 * US)  # same congestion event: no cut
    assert window.cwnd == 16
    cc.on_loss(now=1 * MS + 250 * US)  # > srtt later: a new event
    assert window.cwnd == 8


def test_aimd_timeout_collapses_to_min():
    window, cc = make("aimd", initial_cwnd_frames=32, min_cwnd_frames=2)
    cc.on_timeout(now=1 * MS)
    assert window.cwnd == 2
    # Recovery: additive increase climbs back.
    cc.on_ack(2, False, now=2 * MS)
    assert cc._cwnd > 2.0


def test_aimd_clamps_to_window_bounds():
    window, cc = make("aimd", size=8, initial_cwnd_frames=8)
    for k in range(200):
        cc.on_ack(8, False, now=k)
    assert window.cwnd == 8  # never exceeds the flow-control window
    for k in range(10):
        cc.on_loss(now=(k + 1) * 10 * MS)
    assert window.cwnd == 2  # never below min_cwnd_frames


def test_rtt_ewma_and_karn_filter():
    _, cc = make("aimd", rtt_init_ns=200 * US, rtt_gain=0.125)
    cc.on_ack(1, False, now=0, rtt_sample_ns=100 * US)
    assert cc._srtt_ns == pytest.approx(187_500.0)
    # Karn: retransmitted frames yield no sample (None) and change nothing.
    cc.on_ack(1, False, now=0, rtt_sample_ns=None)
    assert cc._srtt_ns == pytest.approx(187_500.0)


# -- DCTCP -------------------------------------------------------------------


def test_dctcp_alpha_decays_without_marks():
    window, cc = make("dctcp", initial_cwnd_frames=16, dctcp_g=1 / 16)
    assert cc.alpha == 1.0
    cc.on_ack(16, False, now=0)  # one full window, zero marked
    assert cc.alpha == pytest.approx(1.0 - 1 / 16)
    # No marks in the window: no cut, growth only.
    assert cc._cwnd > 16.0


def test_dctcp_fully_marked_window_halves():
    window, cc = make("dctcp", initial_cwnd_frames=16, dctcp_g=1 / 16)
    cc.on_ack(16, True, now=0)  # F = 1, alpha stays 1.0
    assert cc.alpha == pytest.approx(1.0)
    # cwnd grew by ~1 during the window then got cut by 1 - alpha/2 = 0.5.
    assert cc._cwnd == pytest.approx(17.0 * 0.5)
    assert window.cwnd == 8


def test_dctcp_partially_marked_window_cuts_proportionally():
    window, cc = make("dctcp", initial_cwnd_frames=16, dctcp_g=1 / 16)
    cc.on_ack(8, False, now=0)
    cc.on_ack(8, True, now=0)  # half the window marked: F = 0.5
    expect_alpha = 1.0 + (1 / 16) * (0.5 - 1.0)
    assert cc.alpha == pytest.approx(expect_alpha)
    grown = 16.0 + 8 / 16.0 + 8 / 16.5  # additive increase across the acks
    assert cc._cwnd == pytest.approx(grown * (1.0 - expect_alpha / 2.0))


def test_dctcp_alpha_converges_to_stable_fraction():
    _, cc = make("dctcp", size=256, initial_cwnd_frames=16, dctcp_g=1 / 16)
    # Every 4th acked frame marked, many windows: alpha -> ~0.25.
    for k in range(4000):
        cc.on_ack(1, k % 4 == 0, now=k)
    assert cc.alpha == pytest.approx(0.25, abs=0.08)
    assert cc.marked_fraction == cc.alpha


def test_dctcp_loss_and_timeout_fallbacks():
    window, cc = make("dctcp", initial_cwnd_frames=32, min_cwnd_frames=2)
    cc.on_loss(now=1 * MS)
    assert window.cwnd == 16
    cc.on_timeout(now=10 * MS)
    assert window.cwnd == 2


# -- window interaction ------------------------------------------------------


def test_window_available_respects_cwnd():
    window = SendWindow(size=8)
    assert window.available == 8 and window.can_send
    window.cwnd = 3
    assert window.limit == 3
    assert window.available == 3
    window.cwnd = 99  # larger than the flow window: flow window rules
    assert window.limit == 8
    assert window.available == 8


def test_window_excess_inflight_drains_not_clawed_back():
    from repro.ethernet import Frame, MultiEdgeHeader

    window = SendWindow(size=8)
    for _ in range(6):
        seq = window.allocate_seq()
        frame = Frame(
            src_mac=1, dst_mac=2,
            header=MultiEdgeHeader(payload_length=0, seq=seq),
        )
        window.register(frame, op_id=0, now=0)
    window.cwnd = 2  # controller shrinks below what is already in flight
    assert window.available == 0
    assert not window.can_send
    freed = window.on_ack(5)
    assert len(freed) == 5
    assert window.available == 1  # back under the congestion limit
