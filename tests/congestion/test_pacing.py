"""Token-bucket arithmetic: exact integer-nanosecond departure times."""

import pytest

from repro.congestion import TokenBucket

GBPS = 1e9
FRAME = 1250  # bytes; 10 us on the wire at 1 Gb/s


def test_cost_arithmetic():
    tb = TokenBucket(rate_bps=GBPS, burst_bytes=10 * FRAME)
    assert tb._cost_ns(FRAME) == 10_000
    assert tb._cost_ns(0) == 0


def test_burst_passes_then_paces():
    tb = TokenBucket(rate_bps=GBPS, burst_bytes=10 * FRAME)
    departs = [tb.reserve(FRAME, now=0) for _ in range(13)]
    # The first 10 frames ride the initial burst credit unpaced.
    assert departs[:10] == [0] * 10
    # From then on departures space out at exactly one frame time.
    assert departs[10:] == [10_000, 20_000, 30_000]


def test_sustained_rate_is_exact():
    tb = TokenBucket(rate_bps=GBPS, burst_bytes=2 * FRAME)
    last = 0
    for _ in range(100):
        last = tb.reserve(FRAME, now=0)
    # 100 frames, 2 free from the burst: 98 frame times of spacing.
    assert last == 98 * 10_000


def test_idle_refill_restores_burst_but_never_exceeds_it():
    tb = TokenBucket(rate_bps=GBPS, burst_bytes=2 * FRAME)
    for _ in range(10):
        tb.reserve(FRAME, now=0)
    # After a long idle gap the bucket is full again — but only to
    # burst_bytes, so the 3rd frame of the new burst is paced.
    t = 1_000_000
    assert tb.reserve(FRAME, now=t) == t
    assert tb.reserve(FRAME, now=t) == t
    assert tb.reserve(FRAME, now=t) == t + 10_000


def test_oversize_frame_widens_burst_instead_of_blocking():
    tb = TokenBucket(rate_bps=GBPS, burst_bytes=FRAME)
    big = 5 * FRAME  # could never fit the configured burst
    assert tb.reserve(big, now=0) == 0  # full bucket: departs at once
    # The debt is still charged at the frame's true cost: the bucket is
    # empty until t=50000 and the next frame waits for its own refill.
    assert tb.reserve(FRAME, now=0) == 5 * 10_000


def test_set_rate_rescales_future_costs():
    tb = TokenBucket(rate_bps=GBPS, burst_bytes=FRAME)
    tb.reserve(FRAME, now=0)
    tb.set_rate(GBPS / 2)
    assert tb._cost_ns(FRAME) == 20_000
    tb.set_rate(GBPS, burst_bytes=3 * FRAME)
    assert tb.burst_bytes == 3 * FRAME


def test_departures_are_monotone_integers():
    tb = TokenBucket(rate_bps=123_456_789, burst_bytes=4 * FRAME)
    prev = 0
    now = 0
    for k in range(50):
        now += 1_000 * (k % 7)
        t = tb.reserve(FRAME, now=now)
        assert isinstance(t, int)
        assert t >= now
        assert t >= prev
        prev = t


def test_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate_bps=0, burst_bytes=1)
    with pytest.raises(ValueError):
        TokenBucket(rate_bps=1e9, burst_bytes=0)
    tb = TokenBucket(rate_bps=1e9, burst_bytes=1)
    with pytest.raises(ValueError):
        tb.set_rate(-1)
    with pytest.raises(ValueError):
        tb.set_rate(1e9, burst_bytes=-5)
